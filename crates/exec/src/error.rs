use gnnopt_core::IrError;
use gnnopt_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors raised while executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A required input/parameter binding was not provided.
    MissingBinding(String),
    /// A binding's shape does not match the IR node.
    BindingShape {
        /// Leaf name.
        name: String,
        /// Expected `[rows, cols]`.
        expected: (usize, usize),
        /// Provided shape.
        got: Vec<usize>,
    },
    /// A value needed by a kernel was not live (plan inconsistency).
    ValueNotLive {
        /// Node whose value was missing.
        node: String,
    },
    /// The session is not in the right state for the call.
    Protocol(String),
    /// The execution policy (or its `GNNOPT_THREADS` override) is invalid.
    Policy(String),
    /// Underlying tensor error.
    Tensor(TensorError),
    /// Underlying IR error.
    Ir(IrError),
    /// A worker panicked inside a kernel; the panic was contained at
    /// kernel dispatch and the session is now poisoned.
    KernelPanic {
        /// Human-readable label of the kernel that panicked.
        kernel: String,
        /// Stringified panic payload of the first panicking worker.
        payload: String,
    },
    /// The numeric guard (`GNNOPT_GUARD=1`) found a non-finite value in
    /// a kernel output, localized to the first offending element.
    NonFinite {
        /// Kernel that produced the value.
        kernel: String,
        /// IR node whose output contains the value.
        node: String,
        /// Row of the first non-finite element.
        row: usize,
        /// Column of the first non-finite element.
        col: usize,
    },
    /// The session was poisoned by an earlier contained panic and can
    /// no longer run steps; rebuild it from the same plan.
    Poisoned(String),
    /// A failpoint (`GNNOPT_FAILPOINTS`) injected this error.
    Injected {
        /// Failpoint site that fired.
        site: String,
    },
    /// A halo exchange between shards failed validation.
    Exchange(String),
    /// The input graph failed structural validation.
    Graph(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingBinding(name) => write!(f, "missing binding for leaf '{name}'"),
            ExecError::BindingShape {
                name,
                expected,
                got,
            } => write!(
                f,
                "binding '{name}' has shape {got:?}, expected [{}, {}]",
                expected.0, expected.1
            ),
            ExecError::ValueNotLive { node } => {
                write!(f, "value of node '{node}' is not live (plan inconsistency)")
            }
            ExecError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ExecError::Policy(msg) => write!(f, "execution policy error: {msg}"),
            ExecError::Tensor(e) => write!(f, "tensor error: {e}"),
            ExecError::Ir(e) => write!(f, "ir error: {e}"),
            ExecError::KernelPanic { kernel, payload } => {
                write!(f, "kernel '{kernel}' panicked (session poisoned): {payload}")
            }
            ExecError::NonFinite {
                kernel,
                node,
                row,
                col,
            } => write!(
                f,
                "non-finite value in output of node '{node}' (kernel '{kernel}') at row {row}, col {col}"
            ),
            ExecError::Poisoned(msg) => {
                write!(f, "session poisoned by an earlier kernel panic: {msg}")
            }
            ExecError::Injected { site } => {
                write!(f, "injected fault: error at failpoint '{site}'")
            }
            ExecError::Exchange(msg) => write!(f, "halo exchange error: {msg}"),
            ExecError::Graph(msg) => write!(f, "graph validation error: {msg}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Tensor(e) => Some(e),
            ExecError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ExecError {
    fn from(e: TensorError) -> Self {
        ExecError::Tensor(e)
    }
}

impl From<IrError> for ExecError {
    fn from(e: IrError) -> Self {
        ExecError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = ExecError::MissingBinding("h".into());
        assert!(e.to_string().contains('h'));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ExecError>();
    }

    #[test]
    fn fault_variants_localize() {
        let e = ExecError::NonFinite {
            kernel: "K0 gather".into(),
            node: "v3".into(),
            row: 7,
            col: 2,
        };
        let s = e.to_string();
        assert!(
            s.contains("K0 gather") && s.contains("v3") && s.contains("row 7"),
            "{s}"
        );
        let p = ExecError::KernelPanic {
            kernel: "K1".into(),
            payload: "boom".into(),
        };
        assert!(p.to_string().contains("poisoned"), "{p}");
        assert!(ExecError::Injected {
            site: "refexec".into()
        }
        .to_string()
        .contains("refexec"));
    }
}

use gnnopt_core::IrError;
use gnnopt_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors raised while executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A required input/parameter binding was not provided.
    MissingBinding(String),
    /// A binding's shape does not match the IR node.
    BindingShape {
        /// Leaf name.
        name: String,
        /// Expected `[rows, cols]`.
        expected: (usize, usize),
        /// Provided shape.
        got: Vec<usize>,
    },
    /// A value needed by a kernel was not live (plan inconsistency).
    ValueNotLive {
        /// Node whose value was missing.
        node: String,
    },
    /// The session is not in the right state for the call.
    Protocol(String),
    /// The execution policy (or its `GNNOPT_THREADS` override) is invalid.
    Policy(String),
    /// Underlying tensor error.
    Tensor(TensorError),
    /// Underlying IR error.
    Ir(IrError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingBinding(name) => write!(f, "missing binding for leaf '{name}'"),
            ExecError::BindingShape {
                name,
                expected,
                got,
            } => write!(
                f,
                "binding '{name}' has shape {got:?}, expected [{}, {}]",
                expected.0, expected.1
            ),
            ExecError::ValueNotLive { node } => {
                write!(f, "value of node '{node}' is not live (plan inconsistency)")
            }
            ExecError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ExecError::Policy(msg) => write!(f, "execution policy error: {msg}"),
            ExecError::Tensor(e) => write!(f, "tensor error: {e}"),
            ExecError::Ir(e) => write!(f, "ir error: {e}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Tensor(e) => Some(e),
            ExecError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ExecError {
    fn from(e: TensorError) -> Self {
        ExecError::Tensor(e)
    }
}

impl From<IrError> for ExecError {
    fn from(e: IrError) -> Self {
        ExecError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = ExecError::MissingBinding("h".into());
        assert!(e.to_string().contains('h'));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ExecError>();
    }
}

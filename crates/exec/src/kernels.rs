//! Reference CPU kernels for every IR operator.
//!
//! Layout convention: a tensor with dim `{heads, feat}` is stored as
//! `[rows, heads*feat]` row-major, head-major within a row (head `h`'s
//! features occupy columns `h*feat .. (h+1)*feat`).
//!
//! # Inner loops
//!
//! The per-row feature-axis loops (accumulate, scale, max, softmax
//! expressions) are the shared vectorized functions of
//! [`gnnopt_tensor::rowops`]; the fused tiled interpreter
//! ([`crate::fused`]) calls the *same* functions, so the two execution
//! paths share one set of inner loops and stay bit-identical by
//! construction rather than by parallel maintenance.
//!
//! # Thread parallelism and degree-binned dispatch
//!
//! Every kernel takes an [`ExecPolicy`] and partitions its work over
//! `std::thread::scope` workers (the same pattern as `Tensor::matmul`,
//! sharing the pool size via `gnnopt_tensor::parallel`):
//!
//! * **row-partitioned** kernels (scatter, elementwise, head ops, MoNet
//!   weights) split the output into contiguous row ranges;
//! * **vertex-partitioned** kernels (gather, edge softmax and its
//!   backward) split the CSR vertex range; because canonical edge ids are
//!   destination-major, each vertex range also owns a *contiguous* block
//!   of edge rows, so `ByDst` edge-space outputs split without atomics.
//!   When [`ExecPolicy::group_workers`] is set, the vertex boundaries are
//!   cut **edge-balanced** (each worker owns roughly the same number of
//!   edges — the fused interpreter's GNNAdvisor-style discipline,
//!   promoted here in PR 6) instead of vertex-count-balanced; either
//!   split is data-disjoint, so the choice never affects results.
//! * **`BySrc` gathers** stream: a source row's edges are scattered
//!   through the destination-major edge tensor, but `out_adj` lists them
//!   in ascending canonical id, so one ascending scan of *all* edges
//!   visits every source's edges in exactly the per-row order. Each
//!   worker owns a source-vertex range and scans the full edge array,
//!   keeping the reads sequential (prefetch-friendly) while every output
//!   element retains the serial accumulation order.
//!
//! # Determinism contract, per kernel
//!
//! * **Bit-identical at every thread count** (and identical to the fused
//!   interpreter): all scatter/elementwise/head kernels, [`gather`] (all
//!   reductions — see the heavy-row note below), [`gather_mean_bwd`],
//!   [`gather_max_bwd`] (each output element is written by at most one
//!   edge, so the inverted edge partition cannot race), [`edge_softmax`],
//!   [`edge_softmax_from_aux`] and [`edge_softmax_bwd`]. Chunk
//!   boundaries depend only on `(rows, threads)` (or `(indptr,
//!   threads)` for the edge-balanced split) and no floating-point
//!   reduction crosses a worker boundary.
//! * **Fixed reassociation, thread-count invariant**: the cross-row
//!   parameter reductions [`head_dot_bwd_param`], [`gaussian_bwd_mu`]
//!   and [`gaussian_bwd_sigma`] accumulate fixed
//!   [`PARAM_REDUCE_CHUNK_ROWS`]-row partials combined in ascending
//!   chunk order — the chunk grid is a pure function of the row count,
//!   never of the thread count, so any worker assignment yields the
//!   same bits (proptested in `tests/backward_reduce.rs`); the
//!   association differs from a single left-to-right sweep, which is the
//!   documented cost of running them parallel at all.
//! * **Heavy destination rows** (in-degree above
//!   [`ExecPolicy::heavy_row_degree`]) in `Sum`/`Mean` [`gather`]s are
//!   reduced as fixed [`ExecPolicy::HEAVY_ROW_CHUNK_EDGES`]-edge chunk
//!   partials combined in ascending chunk order, *at every thread
//!   count* — this is part of the kernel definition, so hub rows can be
//!   split across workers without serial/parallel divergence. `Max`
//!   rows are never chunked (first-wins argmax keeps the plain scan
//!   bit-identical regardless of scheduling).
//!
//! # Empty-group (isolated-vertex) semantics
//!
//! Grouped reductions over vertices with no incident edges follow an
//! explicit identity-element contract:
//!
//! * [`gather`] with `Sum`/`Mean` leaves empty rows at `0.0` (the sum
//!   identity; `Mean` never divides by a zero degree);
//! * [`gather`] with `Max` leaves empty rows at `0.0` — **not** `-inf` —
//!   and marks every element with the [`NO_ARGMAX`] sentinel, which
//!   [`gather_max_bwd`] uses to route *no* gradient to any edge;
//! * [`edge_softmax`] stashes `-inf` max and `0.0` denominator for empty
//!   destination groups (the true identities of max / sum-of-exp). Those
//!   rows are never read back: every edge belongs to a non-empty group,
//!   so [`edge_softmax_from_aux`] and [`edge_softmax_bwd`] only touch
//!   auxiliaries of vertices with in-degree ≥ 1.
//!
//! The contract is asserted on graphs with isolated vertices in this
//! module's tests and exercised by the property suites, whose graph
//! generators emit isolated vertices on purpose.

use crate::contain;
use gnnopt_core::{BinaryFn, Dim, EdgeGroup, ExecPolicy, ReduceFn, ScatterFn, UnaryFn};
use gnnopt_graph::Graph;
use gnnopt_tensor::{pool, rowops, Tensor};
use std::ops::Range;

/// Sentinel argmax entry for empty reduction groups.
pub const NO_ARGMAX: u32 = u32::MAX;

/// Effective worker count for a kernel of `rows` independent rows and
/// `work` total touched elements: serial below the policy threshold, and
/// never more workers than rows.
pub(crate) fn plan_threads(policy: &ExecPolicy, rows: usize, work: usize) -> usize {
    if work < policy.parallel_threshold {
        1
    } else {
        policy.threads.clamp(1, rows.max(1))
    }
}

/// Deterministic chunk boundaries over `rows`: a function of
/// `(rows, threads)` only, so a given policy always yields the same
/// partition (and the partition never affects results anyway — chunks are
/// data-disjoint). Delegates to the workspace-wide split in
/// [`gnnopt_tensor::parallel::chunk_bounds`] — one definition shared with
/// the GEMM engine's partitions.
pub(crate) fn chunk_bounds(rows: usize, threads: usize) -> Vec<usize> {
    gnnopt_tensor::parallel::chunk_bounds(rows, threads)
}

/// Fixed row-chunk length for the cross-row parameter reductions
/// ([`head_dot_bwd_param`], [`gaussian_bwd_mu`], [`gaussian_bwd_sigma`]):
/// partials are accumulated per chunk and combined in ascending chunk
/// order. The grid depends only on the row count — never on the thread
/// count — so results are invariant across worker widths.
pub const PARAM_REDUCE_CHUNK_ROWS: usize = 1 << 14;

/// Deterministic *edge-balanced* vertex boundaries: each of up to
/// `threads` parts owns roughly the same number of edges (`indptr` is the
/// CSR row pointer of the grouping adjacency). The reference-kernel
/// promotion of the fused interpreter's `group_workers` split — a pure
/// function of `(indptr, threads)`, and purely a scheduling choice since
/// parts stay data-disjoint.
pub(crate) fn edge_balanced_vertex_bounds(indptr: &[usize], threads: usize) -> Vec<usize> {
    let n = indptr.len() - 1;
    let workers = threads.clamp(1, n.max(1));
    let total = indptr[n];
    if total == 0 || workers < 2 {
        return chunk_bounds(n, workers);
    }
    let mut bounds = vec![0usize];
    for w in 1..workers {
        let target = (total as u64 * w as u64).div_ceil(workers as u64) as usize;
        let prev = *bounds.last().expect("bounds is non-empty");
        let mut v = prev + 1;
        while v < n && indptr[v] < target {
            v += 1;
        }
        // Leave at least one vertex for each remaining worker.
        bounds.push(v.clamp(prev + 1, n - (workers - w)));
    }
    bounds.push(n);
    bounds
}

/// Vertex-partition boundaries for a grouped kernel under `policy`:
/// edge-balanced when [`ExecPolicy::group_workers`] is set, vertex-count
/// `div_ceil` otherwise. Both are pure functions of their inputs and
/// never affect results.
pub(crate) fn vertex_bounds(policy: &ExecPolicy, indptr: &[usize], threads: usize) -> Vec<usize> {
    if policy.group_workers {
        edge_balanced_vertex_bounds(indptr, threads)
    } else {
        chunk_bounds(indptr.len() - 1, threads)
    }
}

/// Reduces one destination row over its edge id list with `Sum`
/// semantics: `o[c] += Σ_e row(e)[c]`, accumulated in list order. Rows
/// longer than `heavy` edges are reduced as fixed
/// [`ExecPolicy::HEAVY_ROW_CHUNK_EDGES`]-edge chunk partials (built in
/// `scratch`) combined in ascending chunk order — the same association
/// at every thread count, shared verbatim with the fused interpreter.
pub(crate) fn reduce_row_sum<'a>(
    o: &mut [f32],
    ids: &[u32],
    row: impl Fn(usize) -> &'a [f32],
    heavy: usize,
    scratch: &mut Vec<f32>,
) {
    if ids.len() <= heavy {
        for &e in ids {
            rowops::add_assign(o, row(e as usize));
        }
        return;
    }
    scratch.resize(o.len(), 0.0);
    for chunk in ids.chunks(ExecPolicy::HEAVY_ROW_CHUNK_EDGES) {
        scratch.fill(0.0);
        for &e in chunk {
            rowops::add_assign(scratch, row(e as usize));
        }
        rowops::add_assign(o, scratch);
    }
}

/// [`reduce_row_sum`]'s `Mean` sibling: `o[c] += Σ_e inv · row(e)[c]`
/// with the same heavy-row chunking rule.
pub(crate) fn reduce_row_mean<'a>(
    o: &mut [f32],
    ids: &[u32],
    inv: f32,
    row: impl Fn(usize) -> &'a [f32],
    heavy: usize,
    scratch: &mut Vec<f32>,
) {
    if ids.len() <= heavy {
        for &e in ids {
            rowops::axpy(o, inv, row(e as usize));
        }
        return;
    }
    scratch.resize(o.len(), 0.0);
    for chunk in ids.chunks(ExecPolicy::HEAVY_ROW_CHUNK_EDGES) {
        scratch.fill(0.0);
        for &e in chunk {
            rowops::axpy(scratch, inv, row(e as usize));
        }
        rowops::add_assign(o, scratch);
    }
}

/// Shared combine tree of the cross-row parameter reductions: rows are
/// cut into the fixed [`PARAM_REDUCE_CHUNK_ROWS`] grid, `body(range,
/// partial)` fills each chunk's partial (a zeroed `out.len()` buffer),
/// workers own disjoint runs of chunks, and the partials are folded into
/// `out` in ascending chunk order on the calling thread. The partial
/// grid is independent of the worker count, so any `threads` value
/// produces the same bits.
fn param_reduce<F>(policy: &ExecPolicy, rows: usize, work: usize, out: &mut [f32], body: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    let cols = out.len();
    let nchunks = rows.div_ceil(PARAM_REDUCE_CHUNK_ROWS).max(1);
    let threads = plan_threads(policy, nchunks, work);
    let mut partials = pool::take_f32(nchunks * cols);
    partials.resize(nchunks * cols, 0.0);
    let chunk_range =
        |ci: usize| ci * PARAM_REDUCE_CHUNK_ROWS..((ci + 1) * PARAM_REDUCE_CHUNK_ROWS).min(rows);
    if threads < 2 || cols == 0 {
        for (ci, partial) in partials.chunks_mut(cols.max(1)).enumerate() {
            body(chunk_range(ci), partial);
        }
    } else {
        let bounds = chunk_bounds(nchunks, threads);
        let worker_parts = split_rows(&mut partials, cols, &bounds);
        let wg = contain::WorkerGuard::new();
        std::thread::scope(|s| {
            for (w, part) in bounds.windows(2).zip(worker_parts) {
                let body = &body;
                let wg = &wg;
                s.spawn(move || {
                    wg.run(|| {
                        for (i, partial) in part.chunks_mut(cols).enumerate() {
                            body(chunk_range(w[0] + i), partial);
                        }
                    })
                });
            }
        });
        wg.rethrow();
    }
    for partial in partials.chunks(cols.max(1)) {
        rowops::add_assign(out, partial);
    }
    pool::put_f32(partials);
}

/// Splits a row-major buffer of `cols`-wide rows into the consecutive
/// chunks delimited by `bounds`.
pub(crate) fn split_rows<'a, T>(
    mut buf: &'a mut [T],
    cols: usize,
    bounds: &[usize],
) -> Vec<&'a mut [T]> {
    let mut chunks = Vec::with_capacity(bounds.len().saturating_sub(1));
    for w in bounds.windows(2) {
        let (head, rest) = buf.split_at_mut((w[1] - w[0]) * cols);
        chunks.push(head);
        buf = rest;
    }
    chunks
}

/// Runs `body(row_range, chunk)` over disjoint contiguous row ranges of
/// `out`, in parallel when the policy allows. `chunk` is the sub-slice
/// holding exactly the rows of `row_range` (local row `i` of the chunk is
/// global row `row_range.start + i`).
fn par_rows<F>(policy: &ExecPolicy, rows: usize, cols: usize, work: usize, out: &mut [f32], body: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    let threads = plan_threads(policy, rows, work);
    if threads < 2 || cols == 0 {
        body(0..rows, out);
        return;
    }
    let bounds = chunk_bounds(rows, threads);
    let chunks = split_rows(out, cols, &bounds);
    let wg = contain::WorkerGuard::new();
    std::thread::scope(|s| {
        for (w, chunk) in bounds.windows(2).zip(chunks) {
            let body = &body;
            let wg = &wg;
            s.spawn(move || wg.run(|| body(w[0]..w[1], chunk)));
        }
    });
    wg.rethrow();
}

/// Runs `body(vertex_range, edge_rows_chunk)` over disjoint destination
/// vertex ranges. Canonical edge ids are destination-major, so the edges
/// of vertices `[v0, v1)` occupy the contiguous rows
/// `[indptr[v0], indptr[v1])` of the edge-space output — each worker's
/// chunk starts at edge `indptr[vertex_range.start]`.
fn par_dst_groups<F>(policy: &ExecPolicy, g: &Graph, cols: usize, out: &mut [f32], body: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    let n = g.num_vertices();
    let threads = plan_threads(policy, n, g.num_edges() * cols);
    if threads < 2 || cols == 0 {
        body(0..n, out);
        return;
    }
    let indptr = g.in_adj().indptr();
    let bounds = vertex_bounds(policy, indptr, threads);
    let ebounds: Vec<usize> = bounds.iter().map(|&v| indptr[v]).collect();
    let chunks = split_rows(out, cols, &ebounds);
    let wg = contain::WorkerGuard::new();
    std::thread::scope(|s| {
        for (w, chunk) in bounds.windows(2).zip(chunks) {
            let body = &body;
            let wg = &wg;
            s.spawn(move || wg.run(|| body(w[0]..w[1], chunk)));
        }
    });
    wg.rethrow();
}

/// `Scatter`: per-edge combination of endpoint features (row-partitioned).
pub fn scatter(
    policy: &ExecPolicy,
    g: &Graph,
    f: ScatterFn,
    x: &Tensor,
    y: &Tensor,
    out_dim: Dim,
) -> Tensor {
    let m = g.num_edges();
    let total = out_dim.total();
    let mut out = Tensor::zeros(&[m, total]);
    let work = m * total;
    match f {
        ScatterFn::CopyU => {
            par_rows(
                policy,
                m,
                total,
                work,
                out.as_mut_slice(),
                |range, chunk| {
                    for (i, e) in range.enumerate() {
                        chunk[i * total..(i + 1) * total].copy_from_slice(x.row(g.src(e)));
                    }
                },
            );
        }
        ScatterFn::CopyV => {
            par_rows(
                policy,
                m,
                total,
                work,
                out.as_mut_slice(),
                |range, chunk| {
                    for (i, e) in range.enumerate() {
                        chunk[i * total..(i + 1) * total].copy_from_slice(y.row(g.dst(e)));
                    }
                },
            );
        }
        ScatterFn::Bin(bf) => {
            par_rows(
                policy,
                m,
                total,
                work,
                out.as_mut_slice(),
                |range, chunk| {
                    for (i, e) in range.enumerate() {
                        let (xu, yv) = (x.row(g.src(e)), y.row(g.dst(e)));
                        let o = &mut chunk[i * total..(i + 1) * total];
                        rowops::zip2_into(o, xu, yv, |a, b| bf.apply(a, b));
                    }
                },
            );
        }
        ScatterFn::ConcatUV => {
            // Per-head concatenation.
            let heads = out_dim.heads;
            let fx = x.cols() / heads;
            let fy = y.cols() / heads;
            par_rows(
                policy,
                m,
                total,
                work,
                out.as_mut_slice(),
                |range, chunk| {
                    for (i, e) in range.enumerate() {
                        let (xu, yv) = (x.row(g.src(e)), y.row(g.dst(e)));
                        let o = &mut chunk[i * total..(i + 1) * total];
                        for h in 0..heads {
                            let base = h * (fx + fy);
                            o[base..base + fx].copy_from_slice(&xu[h * fx..(h + 1) * fx]);
                            o[base + fx..base + fx + fy].copy_from_slice(&yv[h * fy..(h + 1) * fy]);
                        }
                    }
                },
            );
        }
    }
    out
}

/// `Gather`: grouped reduction of edge features into vertex features
/// (vertex-partitioned). Returns the reduced tensor and, for `Max`, the
/// per-element argmax edge ids (`NO_ARGMAX` for empty groups).
///
/// Empty groups (isolated vertices) keep the `0.0` identity row — see the
/// module-level contract.
pub fn gather(
    policy: &ExecPolicy,
    g: &Graph,
    reduce: ReduceFn,
    group: EdgeGroup,
    x: &Tensor,
) -> (Tensor, Option<Vec<u32>>) {
    let n = g.num_vertices();
    let total = x.cols();
    let mut out = Tensor::zeros(&[n, total]);
    let adj = match group {
        EdgeGroup::ByDst => g.in_adj(),
        EdgeGroup::BySrc => g.out_adj(),
    };
    let work = g.num_edges() * total;
    let threads = plan_threads(policy, n, work);
    let heavy = policy.heavy_row_degree;
    if matches!(reduce, ReduceFn::Max) {
        let argmax = gather_max(g, group, x, threads, out.as_mut_slice());
        return (out, Some(argmax));
    }
    // Sum / Mean. `BySrc` streams the edge tensor in ascending canonical
    // id (which is exactly every source row's `out_adj` order — see the
    // module docs), `ByDst` walks each row's contiguous edge block;
    // both reduce heavy rows through the shared chunked helpers.
    let by_src_scan = matches!(group, EdgeGroup::BySrc);
    let src = g.src_slice();
    // Heavy destination rows are lifted out of the row partition and
    // split *across* workers chunk-by-chunk (phase 2 below) — the hub
    // half of the degree-binned dispatch. Only worth it when there are
    // workers to split over; the serial path reduces them inline with
    // the same chunk association.
    let heavy_rows: Vec<usize> = if by_src_scan || threads < 2 {
        Vec::new()
    } else {
        (0..n).filter(|&v| adj.degree(v) > heavy).collect()
    };
    let split_heavy = !heavy_rows.is_empty();
    let run = |vs: Range<usize>, chunk: &mut [f32]| {
        if by_src_scan {
            // One ascending pass over all edges; accumulate the rows
            // owned by this worker's source range. `BySrc` rows skip the
            // heavy-chunk rule (the scan has no per-row chunk state and
            // its accumulation order is already scheduling-independent).
            let v0 = vs.start;
            match reduce {
                ReduceFn::Sum => {
                    for (e, &s) in src.iter().enumerate() {
                        let v = s as usize;
                        if vs.contains(&v) {
                            let o = &mut chunk[(v - v0) * total..(v - v0 + 1) * total];
                            rowops::add_assign(o, x.row(e));
                        }
                    }
                }
                ReduceFn::Mean => {
                    for (e, &s) in src.iter().enumerate() {
                        let v = s as usize;
                        if vs.contains(&v) {
                            let inv = 1.0 / adj.degree(v) as f32;
                            let o = &mut chunk[(v - v0) * total..(v - v0 + 1) * total];
                            rowops::axpy(o, inv, x.row(e));
                        }
                    }
                }
                ReduceFn::Max => unreachable!("handled above"),
            }
            return;
        }
        // The heavy-row chunk scratch is pooled so the serial path's hub
        // reductions stay allocation-free in steady state.
        let mut scratch = pool::take_f32(total);
        for (i, v) in vs.enumerate() {
            let deg = adj.degree(v);
            if deg == 0 || (split_heavy && deg > heavy) {
                continue;
            }
            let o = &mut chunk[i * total..(i + 1) * total];
            match reduce {
                ReduceFn::Sum => {
                    reduce_row_sum(o, adj.edge_ids(v), |e| x.row(e), heavy, &mut scratch);
                }
                ReduceFn::Mean => {
                    let inv = 1.0 / deg as f32;
                    reduce_row_mean(o, adj.edge_ids(v), inv, |e| x.row(e), heavy, &mut scratch);
                }
                ReduceFn::Max => unreachable!("handled above"),
            }
        }
        pool::put_f32(scratch);
    };
    if threads < 2 || total == 0 {
        run(0..n, out.as_mut_slice());
    } else {
        let bounds = vertex_bounds(policy, adj.indptr(), threads);
        let chunks = split_rows(out.as_mut_slice(), total, &bounds);
        let wg = contain::WorkerGuard::new();
        std::thread::scope(|s| {
            for (w, chunk) in bounds.windows(2).zip(chunks) {
                let run = &run;
                let wg = &wg;
                s.spawn(move || wg.run(|| run(w[0]..w[1], chunk)));
            }
        });
        wg.rethrow();
    }
    if split_heavy {
        // Phase 2: every heavy row's fixed-length chunks, flattened into
        // one task list and divided over the workers; partials are folded
        // into the output in ascending (vertex, chunk) order — exactly
        // the association of `reduce_row_sum`/`reduce_row_mean`'s serial
        // chunked path, so the split changes scheduling only.
        let chunk_edges = ExecPolicy::HEAVY_ROW_CHUNK_EDGES;
        let tasks: Vec<(usize, usize)> = heavy_rows
            .iter()
            .flat_map(|&v| (0..adj.degree(v).div_ceil(chunk_edges)).map(move |ci| (v, ci)))
            .collect();
        let mut partials = vec![0.0f32; tasks.len() * total];
        let bounds = chunk_bounds(tasks.len(), threads);
        let parts = split_rows(&mut partials, total, &bounds);
        let wg = contain::WorkerGuard::new();
        std::thread::scope(|s| {
            for (w, part) in bounds.windows(2).zip(parts) {
                let tasks = &tasks;
                let wg = &wg;
                s.spawn(move || {
                    wg.run(|| {
                        for (i, &(v, ci)) in tasks[w[0]..w[1]].iter().enumerate() {
                            let deg = adj.degree(v);
                            let ids = &adj.edge_ids(v)
                                [ci * chunk_edges..((ci + 1) * chunk_edges).min(deg)];
                            let partial = &mut part[i * total..(i + 1) * total];
                            match reduce {
                                ReduceFn::Sum => {
                                    for &e in ids {
                                        rowops::add_assign(partial, x.row(e as usize));
                                    }
                                }
                                ReduceFn::Mean => {
                                    let inv = 1.0 / deg as f32;
                                    for &e in ids {
                                        rowops::axpy(partial, inv, x.row(e as usize));
                                    }
                                }
                                ReduceFn::Max => unreachable!("handled above"),
                            }
                        }
                    })
                });
            }
        });
        wg.rethrow();
        for (i, &(v, _)) in tasks.iter().enumerate() {
            rowops::add_assign(out.row_mut(v), &partials[i * total..(i + 1) * total]);
        }
    }
    (out, None)
}

/// `Gather(Max)` body: per-row first-wins scan (bit-identical under any
/// partition — see the module contract). `BySrc` streams edges with the
/// `NO_ARGMAX` sentinel standing in for the per-row "first edge" flag,
/// which is equivalent because a row's first edge writes every element.
fn gather_max(
    g: &Graph,
    group: EdgeGroup,
    x: &Tensor,
    threads: usize,
    out: &mut [f32],
) -> Vec<u32> {
    let n = g.num_vertices();
    let total = x.cols();
    let mut argmax = pool::take_u32(n * total);
    argmax.resize(n * total, NO_ARGMAX);
    let adj = match group {
        EdgeGroup::ByDst => g.in_adj(),
        EdgeGroup::BySrc => g.out_adj(),
    };
    let src = g.src_slice();
    let run = |vs: Range<usize>, chunk: &mut [f32], am: &mut [u32]| {
        if matches!(group, EdgeGroup::BySrc) {
            let v0 = vs.start;
            for (e, &s) in src.iter().enumerate() {
                let v = s as usize;
                if !vs.contains(&v) {
                    continue;
                }
                let o = &mut chunk[(v - v0) * total..(v - v0 + 1) * total];
                let ar = &mut am[(v - v0) * total..(v - v0 + 1) * total];
                let xr = x.row(e);
                for c in 0..total {
                    if ar[c] == NO_ARGMAX || xr[c] > o[c] {
                        o[c] = xr[c];
                        ar[c] = e as u32;
                    }
                }
            }
            return;
        }
        for (i, v) in vs.enumerate() {
            let o = &mut chunk[i * total..(i + 1) * total];
            let ar = &mut am[i * total..(i + 1) * total];
            let mut first = true;
            for &e in adj.edge_ids(v) {
                let xr = x.row(e as usize);
                for c in 0..total {
                    if first || xr[c] > o[c] {
                        o[c] = xr[c];
                        ar[c] = e;
                    }
                }
                first = false;
            }
        }
    };
    if threads < 2 || total == 0 {
        run(0..n, out, &mut argmax);
    } else {
        let bounds = chunk_bounds(n, threads);
        let out_chunks = split_rows(out, total, &bounds);
        let am_chunks = split_rows(&mut argmax, total, &bounds);
        let wg = contain::WorkerGuard::new();
        std::thread::scope(|s| {
            for ((w, oc), ac) in bounds.windows(2).zip(out_chunks).zip(am_chunks) {
                let run = &run;
                let wg = &wg;
                s.spawn(move || wg.run(|| run(w[0]..w[1], oc, ac)));
            }
        });
        wg.rethrow();
    }
    argmax
}

/// Backward of `Gather(Max)`: routes the vertex gradient to the recorded
/// argmax edges, inverted to an **edge-row partition**: `argmax[v][c] ==
/// e` is only possible for the one vertex `e` groups under (`dst(e)` for
/// `ByDst`, `src(e)` for `BySrc`), so each output element is written at
/// most once — no scatter races, and results are bit-identical at every
/// thread count.
///
/// `NO_ARGMAX` entries (empty groups) route no gradient.
pub fn gather_max_bwd(
    policy: &ExecPolicy,
    g: &Graph,
    group: EdgeGroup,
    grad: &Tensor,
    argmax: &[u32],
) -> Tensor {
    let total = grad.cols();
    let m = g.num_edges();
    let mut out = Tensor::zeros(&[m, total]);
    par_rows(
        policy,
        m,
        total,
        m * total,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, e) in range.enumerate() {
                let v = match group {
                    EdgeGroup::ByDst => g.dst(e),
                    EdgeGroup::BySrc => g.src(e),
                };
                let ar = &argmax[v * total..(v + 1) * total];
                let gr = grad.row(v);
                let o = &mut chunk[i * total..(i + 1) * total];
                for c in 0..total {
                    if ar[c] == e as u32 {
                        o[c] = gr[c];
                    }
                }
            }
        },
    );
    out
}

/// Backward of `Gather(Mean)`: scatters `grad[v] / degree(v)`
/// (row-partitioned over edges — each edge row depends only on its group
/// vertex, and a vertex with an incident edge always has degree ≥ 1).
pub fn gather_mean_bwd(policy: &ExecPolicy, g: &Graph, group: EdgeGroup, grad: &Tensor) -> Tensor {
    let total = grad.cols();
    let m = g.num_edges();
    let mut out = Tensor::zeros(&[m, total]);
    let adj = match group {
        EdgeGroup::ByDst => g.in_adj(),
        EdgeGroup::BySrc => g.out_adj(),
    };
    par_rows(
        policy,
        m,
        total,
        m * total,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, e) in range.enumerate() {
                let v = match group {
                    EdgeGroup::ByDst => g.dst(e),
                    EdgeGroup::BySrc => g.src(e),
                };
                let inv = 1.0 / adj.degree(v) as f32;
                let o = &mut chunk[i * total..(i + 1) * total];
                rowops::scale_into(o, inv, grad.row(v));
            }
        },
    );
    out
}

/// Edge softmax over destination groups, per column (vertex-partitioned).
/// Returns `(y, max, denom)` where `max`/`denom` are the `O(|V|)`
/// auxiliaries the recomputation pass stashes.
///
/// Empty destination groups keep the reduction identities in the
/// auxiliaries — `-inf` max, `0.0` denominator — and are never read back
/// (see the module-level contract).
pub fn edge_softmax(policy: &ExecPolicy, g: &Graph, x: &Tensor) -> (Tensor, Tensor, Tensor) {
    let (n, total) = (g.num_vertices(), x.cols());
    let m = g.num_edges();
    let mut maxes = Tensor::full(&[n, total], f32::NEG_INFINITY);
    let mut denom = Tensor::zeros(&[n, total]);
    let mut y = Tensor::zeros(&[m, total]);
    let indptr = g.in_adj().indptr();
    let run = |vs: Range<usize>, mc: &mut [f32], dc: &mut [f32], yc: &mut [f32]| {
        let e0 = indptr[vs.start];
        for (i, v) in vs.enumerate() {
            let ids = g.in_adj().edge_ids(v);
            if ids.is_empty() {
                continue;
            }
            let mr = &mut mc[i * total..(i + 1) * total];
            for &e in ids {
                rowops::max_assign(mr, x.row(e as usize));
            }
            let dr = &mut dc[i * total..(i + 1) * total];
            for &e in ids {
                rowops::exp_sub_accum(dr, x.row(e as usize), mr);
            }
            for &e in ids {
                let yr = &mut yc[(e as usize - e0) * total..(e as usize - e0 + 1) * total];
                rowops::softmax_from_stats(yr, x.row(e as usize), mr, dr);
            }
        }
    };
    let threads = plan_threads(policy, n, m * total);
    if threads < 2 || total == 0 {
        run(
            0..n,
            maxes.as_mut_slice(),
            denom.as_mut_slice(),
            y.as_mut_slice(),
        );
    } else {
        let bounds = vertex_bounds(policy, indptr, threads);
        let ebounds: Vec<usize> = bounds.iter().map(|&v| indptr[v]).collect();
        let m_chunks = split_rows(maxes.as_mut_slice(), total, &bounds);
        let d_chunks = split_rows(denom.as_mut_slice(), total, &bounds);
        let y_chunks = split_rows(y.as_mut_slice(), total, &ebounds);
        let wg = contain::WorkerGuard::new();
        std::thread::scope(|s| {
            for (((w, mc), dc), yc) in bounds.windows(2).zip(m_chunks).zip(d_chunks).zip(y_chunks) {
                let run = &run;
                let wg = &wg;
                s.spawn(move || wg.run(|| run(w[0]..w[1], mc, dc, yc)));
            }
        });
        wg.rethrow();
    }
    (y, maxes, denom)
}

/// Rebuilds edge-softmax outputs from the stashed max/denominator in
/// `O(1)` per element (the §6 recompute path; row-partitioned over
/// edges). Only non-empty groups are read: every edge's destination has
/// in-degree ≥ 1.
pub fn edge_softmax_from_aux(
    policy: &ExecPolicy,
    g: &Graph,
    x: &Tensor,
    maxes: &Tensor,
    denom: &Tensor,
) -> Tensor {
    let total = x.cols();
    let m = g.num_edges();
    let mut y = Tensor::zeros(&[m, total]);
    par_rows(
        policy,
        m,
        total,
        m * total,
        y.as_mut_slice(),
        |range, chunk| {
            for (i, e) in range.enumerate() {
                let v = g.dst(e);
                let yr = &mut chunk[i * total..(i + 1) * total];
                rowops::softmax_from_stats(yr, x.row(e), maxes.row(v), denom.row(v));
            }
        },
    );
    y
}

/// Backward of edge softmax (vertex-partitioned):
/// `∂x_e = y_e (g_e − Σ_{e'∈grp(e)} g_{e'} y_{e'})`.
pub fn edge_softmax_bwd(policy: &ExecPolicy, g: &Graph, grad: &Tensor, y: &Tensor) -> Tensor {
    let total = grad.cols();
    let mut out = Tensor::zeros(&[g.num_edges(), total]);
    let indptr = g.in_adj().indptr();
    par_dst_groups(policy, g, total, out.as_mut_slice(), |vs, chunk| {
        let e0 = indptr[vs.start];
        // One group-sum buffer per worker range, zeroed per vertex — the
        // per-vertex allocation would otherwise dominate the backward's
        // steady-state heap traffic.
        let mut s = pool::take_f32(total);
        s.resize(total, 0.0);
        for v in vs {
            let ids = g.in_adj().edge_ids(v);
            s.fill(0.0);
            for &e in ids {
                rowops::mul_add_accum(&mut s, grad.row(e as usize), y.row(e as usize));
            }
            for &e in ids {
                let or = &mut chunk[(e as usize - e0) * total..(e as usize - e0 + 1) * total];
                rowops::softmax_bwd_row(or, grad.row(e as usize), y.row(e as usize), &s);
            }
        }
        pool::put_f32(s);
    });
    out
}

/// Elementwise binary with per-head feature broadcast (`feat == 1` on one
/// side broadcasts across the other side's features; row-partitioned).
pub fn binary_broadcast(
    policy: &ExecPolicy,
    f: BinaryFn,
    a: &Tensor,
    da: Dim,
    b: &Tensor,
    db: Dim,
) -> Tensor {
    assert_eq!(da.heads, db.heads, "head counts must agree");
    let rows = a.rows();
    let heads = da.heads;
    if da.feat == db.feat {
        let cols = a.cols();
        let mut out = a.clone();
        par_rows(
            policy,
            rows,
            cols,
            rows * cols,
            out.as_mut_slice(),
            |range, chunk| {
                for (i, r) in range.enumerate() {
                    let o = &mut chunk[i * cols..(i + 1) * cols];
                    rowops::binary_assign(o, b.row(r), |a, b| f.apply(a, b));
                }
            },
        );
        return out;
    }
    let feat = da.feat.max(db.feat);
    let cols = heads * feat;
    let mut out = Tensor::zeros(&[rows, cols]);
    par_rows(
        policy,
        rows,
        cols,
        rows * cols,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let (ar, br) = (a.row(r), b.row(r));
                let or = &mut chunk[i * cols..(i + 1) * cols];
                for h in 0..heads {
                    for c in 0..feat {
                        let av = if da.feat == 1 {
                            ar[h]
                        } else {
                            ar[h * feat + c]
                        };
                        let bv = if db.feat == 1 {
                            br[h]
                        } else {
                            br[h * feat + c]
                        };
                        or[h * feat + c] = f.apply(av, bv);
                    }
                }
            }
        },
    );
    out
}

/// `Unary`: elementwise `f(x)` (partitioned over the flat buffer).
pub fn unary(policy: &ExecPolicy, f: UnaryFn, x: &Tensor) -> Tensor {
    let mut out = x.clone();
    let numel = out.numel();
    par_rows(
        policy,
        numel,
        1,
        numel,
        out.as_mut_slice(),
        |_range, chunk| {
            rowops::map_assign(chunk, |v| f.apply(v));
        },
    );
    out
}

/// In-place `Unary`: identical partitioning and elementwise application
/// to [`unary`], minus the output clone. The arena's in-place fast path
/// (a node whose single input dies at that node) reuses the input buffer
/// through this entry point; because the map is position-independent, the
/// bits match [`unary`] exactly.
pub fn unary_inplace(policy: &ExecPolicy, f: UnaryFn, x: &mut Tensor) {
    let numel = x.numel();
    par_rows(
        policy,
        numel,
        1,
        numel,
        x.as_mut_slice(),
        |_range, chunk| {
            rowops::map_assign(chunk, |v| f.apply(v));
        },
    );
}

/// `UnaryBwd`: `grad · f'(x)` (partitioned over the flat buffer).
pub fn unary_bwd(policy: &ExecPolicy, f: UnaryFn, grad: &Tensor, x: &Tensor) -> Tensor {
    let mut out = grad.clone();
    let numel = out.numel();
    par_rows(
        policy,
        numel,
        1,
        numel,
        out.as_mut_slice(),
        |range, chunk| {
            rowops::binary_assign(chunk, &x.as_slice()[range], |g, xv| g * f.derivative(xv));
        },
    );
    out
}

/// Per-head dot product with a parameter: `[N, h·f] × [h, f] → [N, h]`
/// (row-partitioned).
pub fn head_dot(policy: &ExecPolicy, x: &Tensor, a: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, heads]);
    par_rows(
        policy,
        rows,
        heads,
        rows * heads * feat,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let xr = x.row(r);
                let or = &mut chunk[i * heads..(i + 1) * heads];
                for h in 0..heads {
                    let ar = a.row(h);
                    let mut acc = 0.0;
                    for c in 0..feat {
                        acc += xr[h * feat + c] * ar[c];
                    }
                    or[h] = acc;
                }
            }
        },
    );
    out
}

/// Backward of [`head_dot`] w.r.t. the data: `out[r, h·f+c] = g[r,h]·a[h,c]`
/// (row-partitioned).
pub fn head_dot_bwd_input(
    policy: &ExecPolicy,
    grad: &Tensor,
    a: &Tensor,
    heads: usize,
    feat: usize,
) -> Tensor {
    let rows = grad.rows();
    let cols = heads * feat;
    let mut out = Tensor::zeros(&[rows, cols]);
    par_rows(
        policy,
        rows,
        cols,
        rows * cols,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let gr = grad.row(r);
                let or = &mut chunk[i * cols..(i + 1) * cols];
                for h in 0..heads {
                    let ar = a.row(h);
                    for c in 0..feat {
                        or[h * feat + c] = gr[h] * ar[c];
                    }
                }
            }
        },
    );
    out
}

/// Backward of [`head_dot`] w.r.t. the parameter:
/// `out[h, c] = Σ_r g[r,h]·x[r, h·f+c]`.
///
/// Parallelized through [`param_reduce`]: the row axis is cut on the
/// fixed [`PARAM_REDUCE_CHUNK_ROWS`] grid and chunk partials fold in
/// ascending order, so results are invariant in the thread count.
pub fn head_dot_bwd_param(
    policy: &ExecPolicy,
    x: &Tensor,
    grad: &Tensor,
    heads: usize,
    feat: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[heads, feat]);
    param_reduce(
        policy,
        x.rows(),
        x.rows() * heads * feat,
        out.as_mut_slice(),
        |range, partial| {
            for r in range {
                let (xr, gr) = (x.row(r), grad.row(r));
                for h in 0..heads {
                    let or = &mut partial[h * feat..(h + 1) * feat];
                    for c in 0..feat {
                        or[c] += gr[h] * xr[h * feat + c];
                    }
                }
            }
        },
    );
    out
}

/// Gaussian mixture weights (MoNet; row-partitioned over edges):
/// `w[e,k] = exp(-½ Σ_j σ⁻²[k,j](p[e,j]−μ[k,j])²)`.
pub fn gaussian_weight(
    policy: &ExecPolicy,
    pseudo: &Tensor,
    mu: &Tensor,
    inv_sigma: &Tensor,
) -> Tensor {
    let (e, r) = (pseudo.rows(), pseudo.cols());
    let k = mu.rows();
    let mut out = Tensor::zeros(&[e, k]);
    par_rows(
        policy,
        e,
        k,
        e * k * r,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, ei) in range.enumerate() {
                let pr = pseudo.row(ei);
                let or = &mut chunk[i * k..(i + 1) * k];
                for (ki, ov) in or.iter_mut().enumerate().take(k) {
                    let (mr, sr) = (mu.row(ki), inv_sigma.row(ki));
                    let mut acc = 0.0;
                    for j in 0..r {
                        let d = (pr[j] - mr[j]) * sr[j];
                        acc += d * d;
                    }
                    *ov = (-0.5 * acc).exp();
                }
            }
        },
    );
    out
}

/// `∂L/∂μ[k,j] = Σ_e g[e,k]·w[e,k]·σ⁻²[k,j]·(p[e,j]−μ[k,j])`.
///
/// Parallelized through [`param_reduce`] (edge-axis chunks on the fixed
/// grid, ascending fold — thread-count-invariant results).
pub fn gaussian_bwd_mu(
    policy: &ExecPolicy,
    pseudo: &Tensor,
    w: &Tensor,
    grad: &Tensor,
    mu: &Tensor,
    inv_sigma: &Tensor,
) -> Tensor {
    let (e, r) = (pseudo.rows(), pseudo.cols());
    let k = mu.rows();
    let mut out = Tensor::zeros(&[k, r]);
    param_reduce(
        policy,
        e,
        e * k * r,
        out.as_mut_slice(),
        |range, partial| {
            for ei in range {
                let (pr, wr, gr) = (pseudo.row(ei), w.row(ei), grad.row(ei));
                for ki in 0..k {
                    let coeff = gr[ki] * wr[ki];
                    if coeff == 0.0 {
                        continue;
                    }
                    let (mr, sr) = (mu.row(ki), inv_sigma.row(ki));
                    let or = &mut partial[ki * r..(ki + 1) * r];
                    for j in 0..r {
                        or[j] += coeff * sr[j] * sr[j] * (pr[j] - mr[j]);
                    }
                }
            }
        },
    );
    out
}

/// `∂L/∂σ⁻¹[k,j] = −Σ_e g[e,k]·w[e,k]·σ⁻¹[k,j]·(p[e,j]−μ[k,j])²`.
///
/// Parallelized through [`param_reduce`] (edge-axis chunks on the fixed
/// grid, ascending fold — thread-count-invariant results).
pub fn gaussian_bwd_sigma(
    policy: &ExecPolicy,
    pseudo: &Tensor,
    w: &Tensor,
    grad: &Tensor,
    mu: &Tensor,
    inv_sigma: &Tensor,
) -> Tensor {
    let (e, r) = (pseudo.rows(), pseudo.cols());
    let k = mu.rows();
    let mut out = Tensor::zeros(&[k, r]);
    param_reduce(
        policy,
        e,
        e * k * r,
        out.as_mut_slice(),
        |range, partial| {
            for ei in range {
                let (pr, wr, gr) = (pseudo.row(ei), w.row(ei), grad.row(ei));
                for ki in 0..k {
                    let coeff = gr[ki] * wr[ki];
                    if coeff == 0.0 {
                        continue;
                    }
                    let (mr, sr) = (mu.row(ki), inv_sigma.row(ki));
                    let or = &mut partial[ki * r..(ki + 1) * r];
                    for j in 0..r {
                        let d = pr[j] - mr[j];
                        or[j] -= coeff * sr[j] * d * d;
                    }
                }
            }
        },
    );
    out
}

/// Per-head column slice `[start, end)` (feat units; row-partitioned).
pub fn slice_cols(
    policy: &ExecPolicy,
    x: &Tensor,
    heads: usize,
    feat: usize,
    start: usize,
    end: usize,
) -> Tensor {
    let rows = x.rows();
    let w = end - start;
    let cols = heads * w;
    let mut out = Tensor::zeros(&[rows, cols]);
    par_rows(
        policy,
        rows,
        cols,
        rows * cols,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let xr = x.row(r);
                let or = &mut chunk[i * cols..(i + 1) * cols];
                for h in 0..heads {
                    or[h * w..(h + 1) * w].copy_from_slice(&xr[h * feat + start..h * feat + end]);
                }
            }
        },
    );
    out
}

/// Backward of [`slice_cols`]: embed into zero-padded columns
/// (row-partitioned).
pub fn embed_cols(
    policy: &ExecPolicy,
    grad: &Tensor,
    heads: usize,
    total_feat: usize,
    start: usize,
    end: usize,
) -> Tensor {
    let rows = grad.rows();
    let w = end - start;
    let cols = heads * total_feat;
    let mut out = Tensor::zeros(&[rows, cols]);
    par_rows(
        policy,
        rows,
        cols,
        rows * cols,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let gr = grad.row(r);
                let or = &mut chunk[i * cols..(i + 1) * cols];
                for h in 0..heads {
                    or[h * total_feat + start..h * total_feat + end]
                        .copy_from_slice(&gr[h * w..(h + 1) * w]);
                }
            }
        },
    );
    out
}

/// Head reduction `[N, h·f] → [N, f]` (`Sum` or `Mean`; row-partitioned).
pub fn head_reduce(
    policy: &ExecPolicy,
    x: &Tensor,
    heads: usize,
    feat: usize,
    mean: bool,
) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, feat]);
    let scale = if mean { 1.0 / heads as f32 } else { 1.0 };
    par_rows(
        policy,
        rows,
        feat,
        rows * heads * feat,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let xr = x.row(r);
                let or = &mut chunk[i * feat..(i + 1) * feat];
                for h in 0..heads {
                    for c in 0..feat {
                        or[c] += xr[h * feat + c] * scale;
                    }
                }
            }
        },
    );
    out
}

/// Head broadcast `[N, f] → [N, h·f]` (row-partitioned).
pub fn head_broadcast(policy: &ExecPolicy, x: &Tensor, heads: usize) -> Tensor {
    let (rows, feat) = (x.rows(), x.cols());
    let cols = heads * feat;
    let mut out = Tensor::zeros(&[rows, cols]);
    par_rows(
        policy,
        rows,
        cols,
        rows * cols,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let xr = x.row(r);
                let or = &mut chunk[i * cols..(i + 1) * cols];
                for h in 0..heads {
                    or[h * feat..(h + 1) * feat].copy_from_slice(xr);
                }
            }
        },
    );
    out
}

/// Per-head feature sum `[N, h·f] → [N, h]` (row-partitioned).
pub fn feat_sum(policy: &ExecPolicy, x: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, heads]);
    par_rows(
        policy,
        rows,
        heads,
        rows * heads * feat,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let xr = x.row(r);
                let or = &mut chunk[i * heads..(i + 1) * heads];
                for h in 0..heads {
                    or[h] = xr[h * feat..(h + 1) * feat].iter().sum();
                }
            }
        },
    );
    out
}

/// Per-head feature broadcast `[N, h] → [N, h·f]` (row-partitioned).
pub fn feat_broadcast(policy: &ExecPolicy, x: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = x.rows();
    let cols = heads * feat;
    let mut out = Tensor::zeros(&[rows, cols]);
    par_rows(
        policy,
        rows,
        cols,
        rows * cols,
        out.as_mut_slice(),
        |range, chunk| {
            for (i, r) in range.enumerate() {
                let xr = x.row(r);
                let or = &mut chunk[i * cols..(i + 1) * cols];
                for h in 0..heads {
                    for c in 0..feat {
                        or[h * feat + c] = xr[h];
                    }
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_graph::EdgeList;

    fn serial() -> ExecPolicy {
        ExecPolicy::serial()
    }

    /// 0 → 1, 0 → 2, 1 → 2 (edge ids in dst-major order).
    fn tri() -> Graph {
        Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]))
    }

    /// `tri()` plus an isolated vertex 3 (no in- or out-edges).
    fn tri_iso() -> Graph {
        Graph::from_edge_list(&EdgeList::from_pairs(4, &[(0, 1), (0, 2), (1, 2)]))
    }

    fn vfeat() -> Tensor {
        Tensor::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]).unwrap()
    }

    #[test]
    fn scatter_variants() {
        let g = tri();
        let x = vfeat();
        let cu = scatter(&serial(), &g, ScatterFn::CopyU, &x, &x, Dim::flat(2));
        // edges: (0→1), (0→2), (1→2)
        assert_eq!(cu.row(0), &[1.0, 10.0]);
        assert_eq!(cu.row(2), &[2.0, 20.0]);
        let cv = scatter(&serial(), &g, ScatterFn::CopyV, &x, &x, Dim::flat(2));
        assert_eq!(cv.row(0), &[2.0, 20.0]);
        let sub = scatter(
            &serial(),
            &g,
            ScatterFn::Bin(BinaryFn::Sub),
            &x,
            &x,
            Dim::flat(2),
        );
        assert_eq!(sub.row(0), &[-1.0, -10.0]);
        assert_eq!(sub.row(2), &[-1.0, -10.0]);
    }

    #[test]
    fn scatter_concat_per_head() {
        let g = tri();
        // 2 heads × 1 feat
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let cat = scatter(&serial(), &g, ScatterFn::ConcatUV, &x, &x, Dim::multi(2, 2));
        // edge 0: u=0 (heads 1,2), v=1 (heads 3,4) → per-head: [1,3, 2,4]
        assert_eq!(cat.row(0), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn gather_sum_and_dual() {
        let g = tri();
        let e = Tensor::from_rows(&[&[1.0], &[2.0], &[4.0]]).unwrap();
        let (by_dst, _) = gather(&serial(), &g, ReduceFn::Sum, EdgeGroup::ByDst, &e);
        assert_eq!(by_dst.as_slice(), &[0.0, 1.0, 6.0]);
        let (by_src, _) = gather(&serial(), &g, ReduceFn::Sum, EdgeGroup::BySrc, &e);
        assert_eq!(by_src.as_slice(), &[3.0, 4.0, 0.0]);
    }

    #[test]
    fn gather_max_records_argmax() {
        let g = tri();
        let e = Tensor::from_rows(&[&[5.0], &[2.0], &[7.0]]).unwrap();
        let (mx, am) = gather(&serial(), &g, ReduceFn::Max, EdgeGroup::ByDst, &e);
        let am = am.unwrap();
        assert_eq!(mx.as_slice(), &[0.0, 5.0, 7.0]);
        assert_eq!(am, vec![NO_ARGMAX, 0, 2]);
        let grad = Tensor::from_rows(&[&[1.0], &[3.0], &[9.0]]).unwrap();
        let eg = gather_max_bwd(&serial(), &g, EdgeGroup::ByDst, &grad, &am);
        assert_eq!(eg.as_slice(), &[3.0, 0.0, 9.0]);
    }

    #[test]
    fn empty_groups_keep_identity_elements() {
        // The module-level empty-group contract, asserted on an isolated
        // vertex (id 3): Sum/Mean/Max rows stay 0.0, Max marks NO_ARGMAX,
        // the backward routes no gradient, and edge_softmax stashes the
        // -inf / 0.0 reduction identities without reading them back.
        let g = tri_iso();
        let e = Tensor::from_rows(&[&[5.0, -1.0], &[2.0, 4.0], &[7.0, 0.5]]).unwrap();

        for reduce in [ReduceFn::Sum, ReduceFn::Mean, ReduceFn::Max] {
            let (out, _) = gather(&serial(), &g, reduce, EdgeGroup::ByDst, &e);
            assert_eq!(out.row(3), &[0.0, 0.0], "{reduce:?} identity row");
            let (out, _) = gather(&serial(), &g, reduce, EdgeGroup::BySrc, &e);
            assert_eq!(out.row(3), &[0.0, 0.0], "{reduce:?} identity row (src)");
        }

        let (_, am) = gather(&serial(), &g, ReduceFn::Max, EdgeGroup::ByDst, &e);
        let am = am.unwrap();
        assert_eq!(&am[6..8], &[NO_ARGMAX, NO_ARGMAX], "isolated vertex");
        assert_eq!(&am[0..2], &[NO_ARGMAX, NO_ARGMAX], "in-degree-0 vertex 0");
        let grad = Tensor::from_fn(&[4, 2], |i| i as f32 + 1.0);
        let eg = gather_max_bwd(&serial(), &g, EdgeGroup::ByDst, &grad, &am);
        // Gradient mass routed = grads of vertices with non-empty groups.
        let routed: f32 = eg.as_slice().iter().sum();
        let expected: f32 = grad.row(1).iter().sum::<f32>() + grad.row(2).iter().sum::<f32>();
        assert!((routed - expected).abs() < 1e-6);

        let x = Tensor::from_rows(&[&[0.3], &[1.5], &[-0.7]]).unwrap();
        let (y, maxes, denom) = edge_softmax(&serial(), &g, &x);
        assert_eq!(maxes.row(3), &[f32::NEG_INFINITY], "max identity");
        assert_eq!(denom.row(3), &[0.0], "sum-of-exp identity");
        assert_eq!(maxes.row(0), &[f32::NEG_INFINITY], "in-degree-0 vertex");
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let y2 = edge_softmax_from_aux(&serial(), &g, &x, &maxes, &denom);
        assert!(y.allclose(&y2), "aux rebuild never reads empty groups");
        let bwd = edge_softmax_bwd(&serial(), &g, &Tensor::ones(&[3, 1]), &y);
        assert!(bwd.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_groups_sum_to_one() {
        let g = tri();
        let e = Tensor::from_rows(&[&[0.3], &[1.5], &[-0.7]]).unwrap();
        let (y, maxes, denom) = edge_softmax(&serial(), &g, &e);
        // dst=1 group: {edge 0} → 1.0; dst=2 group: {edges 1, 2} sums to 1.
        assert!((y.at(0, 0) - 1.0).abs() < 1e-6);
        assert!((y.at(1, 0) + y.at(2, 0) - 1.0).abs() < 1e-6);
        // Recompute path agrees.
        let y2 = edge_softmax_from_aux(&serial(), &g, &e, &maxes, &denom);
        assert!(y.allclose(&y2));
    }

    #[test]
    fn softmax_bwd_matches_finite_difference() {
        let g = tri();
        let x = Tensor::from_rows(&[&[0.2], &[0.9], &[-0.4]]).unwrap();
        let gout = Tensor::from_rows(&[&[1.0], &[-2.0], &[0.5]]).unwrap();
        let (y, _, _) = edge_softmax(&serial(), &g, &x);
        let ana = edge_softmax_bwd(&serial(), &g, &gout, &y);
        let h = 1e-3f32;
        for e in 0..3 {
            let mut xp = x.clone();
            xp.row_mut(e)[0] += h;
            let mut xm = x.clone();
            xm.row_mut(e)[0] -= h;
            let (yp, _, _) = edge_softmax(&serial(), &g, &xp);
            let (ym, _, _) = edge_softmax(&serial(), &g, &xm);
            let mut num = 0.0;
            for i in 0..3 {
                num += gout.at(i, 0) * (yp.at(i, 0) - ym.at(i, 0)) / (2.0 * h);
            }
            assert!(
                (num - ana.at(e, 0)).abs() < 1e-2,
                "edge {e}: numeric {num} vs analytic {}",
                ana.at(e, 0)
            );
        }
    }

    #[test]
    fn binary_broadcast_per_head_scalar() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap(); // 2 heads × 2
        let b = Tensor::from_rows(&[&[10.0, 100.0]]).unwrap(); // 2 heads × 1
        let out = binary_broadcast(
            &serial(),
            BinaryFn::Mul,
            &a,
            Dim::multi(2, 2),
            &b,
            Dim::multi(2, 1),
        );
        assert_eq!(out.as_slice(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn head_dot_roundtrip_gradients() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]).unwrap();
        let a = Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]).unwrap();
        let y = head_dot(&serial(), &x, &a, 2, 2);
        assert_eq!(y.row(0), &[1.0 * 0.5 - 2.0, 3.0 * 2.0]);
        let gi = head_dot_bwd_input(&serial(), &y, &a, 2, 2);
        assert_eq!(gi.shape(), &[2, 4]);
        let gp = head_dot_bwd_param(&serial(), &x, &y, 2, 2);
        assert_eq!(gp.shape(), &[2, 2]);
    }

    #[test]
    fn gaussian_weight_peak_at_mu() {
        let p = Tensor::from_rows(&[&[1.0, 2.0], &[0.0, 0.0]]).unwrap();
        let mu = Tensor::from_rows(&[&[1.0, 2.0]]).unwrap();
        let sig = Tensor::from_rows(&[&[1.0, 1.0]]).unwrap();
        let w = gaussian_weight(&serial(), &p, &mu, &sig);
        assert!((w.at(0, 0) - 1.0).abs() < 1e-6, "exact match → weight 1");
        assert!(w.at(1, 0) < 1.0);
    }

    #[test]
    fn gaussian_grads_match_finite_difference() {
        let p = Tensor::from_rows(&[&[0.5, -0.3], &[1.1, 0.2], &[-0.4, 0.9]]).unwrap();
        let mu = Tensor::from_rows(&[&[0.1, 0.4], &[-0.2, 0.3]]).unwrap();
        let sig = Tensor::from_rows(&[&[1.2, 0.8], &[0.5, 1.5]]).unwrap();
        let grad = Tensor::from_rows(&[&[1.0, -0.5], &[0.3, 0.7], &[-0.2, 0.4]]).unwrap();
        let w = gaussian_weight(&serial(), &p, &mu, &sig);
        let gmu = gaussian_bwd_mu(&serial(), &p, &w, &grad, &mu, &sig);
        let gsig = gaussian_bwd_sigma(&serial(), &p, &w, &grad, &mu, &sig);
        let h = 1e-3f32;
        let loss = |mu: &Tensor, sig: &Tensor| -> f32 {
            let w = gaussian_weight(&serial(), &p, mu, sig);
            w.as_slice()
                .iter()
                .zip(grad.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for k in 0..2 {
            for j in 0..2 {
                let mut mp = mu.clone();
                mp.set(k, j, mu.at(k, j) + h);
                let mut mm = mu.clone();
                mm.set(k, j, mu.at(k, j) - h);
                let num = (loss(&mp, &sig) - loss(&mm, &sig)) / (2.0 * h);
                assert!(
                    (num - gmu.at(k, j)).abs() < 1e-2,
                    "mu[{k},{j}]: {num} vs {}",
                    gmu.at(k, j)
                );
                let mut sp = sig.clone();
                sp.set(k, j, sig.at(k, j) + h);
                let mut sm = sig.clone();
                sm.set(k, j, sig.at(k, j) - h);
                let num = (loss(&mu, &sp) - loss(&mu, &sm)) / (2.0 * h);
                assert!(
                    (num - gsig.at(k, j)).abs() < 1e-2,
                    "sig[{k},{j}]: {num} vs {}",
                    gsig.at(k, j)
                );
            }
        }
    }

    #[test]
    fn slice_embed_roundtrip() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]).unwrap(); // 2 heads × 3
        let s = slice_cols(&serial(), &x, 2, 3, 1, 3);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 5.0, 6.0]);
        let e = embed_cols(&serial(), &s, 2, 3, 1, 3);
        assert_eq!(e.as_slice(), &[0.0, 2.0, 3.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn head_reduce_broadcast_featsum() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap(); // 2 heads × 2
        assert_eq!(
            head_reduce(&serial(), &x, 2, 2, false).as_slice(),
            &[4.0, 6.0]
        );
        assert_eq!(
            head_reduce(&serial(), &x, 2, 2, true).as_slice(),
            &[2.0, 3.0]
        );
        let b = head_broadcast(&serial(), &Tensor::from_rows(&[&[7.0, 8.0]]).unwrap(), 2);
        assert_eq!(b.as_slice(), &[7.0, 8.0, 7.0, 8.0]);
        assert_eq!(feat_sum(&serial(), &x, 2, 2).as_slice(), &[3.0, 7.0]);
        assert_eq!(
            feat_broadcast(&serial(), &Tensor::from_rows(&[&[3.0, 7.0]]).unwrap(), 2, 2).as_slice(),
            &[3.0, 3.0, 7.0, 7.0]
        );
    }

    #[test]
    fn gather_mean_and_backward() {
        let g = tri();
        let e = Tensor::from_rows(&[&[2.0], &[4.0], &[6.0]]).unwrap();
        let (m, _) = gather(&serial(), &g, ReduceFn::Mean, EdgeGroup::ByDst, &e);
        assert_eq!(m.as_slice(), &[0.0, 2.0, 5.0]);
        let grad = Tensor::from_rows(&[&[0.0], &[1.0], &[4.0]]).unwrap();
        let back = gather_mean_bwd(&serial(), &g, EdgeGroup::ByDst, &grad);
        assert_eq!(back.as_slice(), &[1.0, 2.0, 2.0]);
    }

    #[test]
    fn deterministic_chunking_is_exhaustive_and_disjoint() {
        for rows in [0usize, 1, 2, 7, 16, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let b = chunk_bounds(rows, threads);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), rows);
                assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
                assert!(b.len() - 1 <= threads.max(1) || rows == 0);
            }
        }
    }
}

//! Reference CPU kernels for every IR operator.
//!
//! Layout convention: a tensor with dim `{heads, feat}` is stored as
//! `[rows, heads*feat]` row-major, head-major within a row (head `h`'s
//! features occupy columns `h*feat .. (h+1)*feat`).

use gnnopt_core::{BinaryFn, Dim, EdgeGroup, ReduceFn, ScatterFn, UnaryFn};
use gnnopt_graph::Graph;
use gnnopt_tensor::Tensor;

/// Sentinel argmax entry for empty reduction groups.
pub const NO_ARGMAX: u32 = u32::MAX;

/// `Scatter`: per-edge combination of endpoint features.
pub fn scatter(g: &Graph, f: ScatterFn, x: &Tensor, y: &Tensor, out_dim: Dim) -> Tensor {
    let m = g.num_edges();
    let total = out_dim.total();
    let mut out = Tensor::zeros(&[m, total]);
    match f {
        ScatterFn::CopyU => {
            for e in 0..m {
                out.row_mut(e).copy_from_slice(x.row(g.src(e)));
            }
        }
        ScatterFn::CopyV => {
            for e in 0..m {
                out.row_mut(e).copy_from_slice(y.row(g.dst(e)));
            }
        }
        ScatterFn::Bin(bf) => {
            for e in 0..m {
                let (xu, yv) = (x.row(g.src(e)), y.row(g.dst(e)));
                for ((o, &a), &b) in out.row_mut(e).iter_mut().zip(xu).zip(yv) {
                    *o = bf.apply(a, b);
                }
            }
        }
        ScatterFn::ConcatUV => {
            // Per-head concatenation.
            let heads = out_dim.heads;
            let fx = x.cols() / heads;
            let fy = y.cols() / heads;
            for e in 0..m {
                let (xu, yv) = (x.row(g.src(e)), y.row(g.dst(e)));
                let o = out.row_mut(e);
                for h in 0..heads {
                    let base = h * (fx + fy);
                    o[base..base + fx].copy_from_slice(&xu[h * fx..(h + 1) * fx]);
                    o[base + fx..base + fx + fy].copy_from_slice(&yv[h * fy..(h + 1) * fy]);
                }
            }
        }
    }
    out
}

/// `Gather`: grouped reduction of edge features into vertex features.
/// Returns the reduced tensor and, for `Max`, the per-element argmax edge
/// ids (`NO_ARGMAX` for empty groups).
pub fn gather(
    g: &Graph,
    reduce: ReduceFn,
    group: EdgeGroup,
    x: &Tensor,
) -> (Tensor, Option<Vec<u32>>) {
    let n = g.num_vertices();
    let total = x.cols();
    let mut out = Tensor::zeros(&[n, total]);
    let adj = match group {
        EdgeGroup::ByDst => g.in_adj(),
        EdgeGroup::BySrc => g.out_adj(),
    };
    match reduce {
        ReduceFn::Sum => {
            for v in 0..n {
                let o = out.row_mut(v);
                for &e in adj.edge_ids(v) {
                    for (ov, &xv) in o.iter_mut().zip(x.row(e as usize)) {
                        *ov += xv;
                    }
                }
            }
            (out, None)
        }
        ReduceFn::Mean => {
            for v in 0..n {
                let deg = adj.degree(v);
                if deg == 0 {
                    continue;
                }
                let inv = 1.0 / deg as f32;
                let o = out.row_mut(v);
                for &e in adj.edge_ids(v) {
                    for (ov, &xv) in o.iter_mut().zip(x.row(e as usize)) {
                        *ov += xv * inv;
                    }
                }
            }
            (out, None)
        }
        ReduceFn::Max => {
            let mut argmax = vec![NO_ARGMAX; n * total];
            for v in 0..n {
                let o = out.row_mut(v);
                let mut first = true;
                for &e in adj.edge_ids(v) {
                    let xr = x.row(e as usize);
                    for c in 0..total {
                        if first || xr[c] > o[c] {
                            o[c] = xr[c];
                            argmax[v * total + c] = e;
                        }
                    }
                    first = false;
                }
            }
            (out, Some(argmax))
        }
    }
}

/// Backward of `Gather(Max)`: routes the vertex gradient to the recorded
/// argmax edges.
pub fn gather_max_bwd(g: &Graph, grad: &Tensor, argmax: &[u32]) -> Tensor {
    let total = grad.cols();
    let mut out = Tensor::zeros(&[g.num_edges(), total]);
    for v in 0..g.num_vertices() {
        let gr = grad.row(v);
        for c in 0..total {
            let e = argmax[v * total + c];
            if e != NO_ARGMAX {
                out.row_mut(e as usize)[c] += gr[c];
            }
        }
    }
    out
}

/// Backward of `Gather(Mean)`: scatters `grad[v] / degree(v)`.
pub fn gather_mean_bwd(g: &Graph, group: EdgeGroup, grad: &Tensor) -> Tensor {
    let total = grad.cols();
    let mut out = Tensor::zeros(&[g.num_edges(), total]);
    let adj = match group {
        EdgeGroup::ByDst => g.in_adj(),
        EdgeGroup::BySrc => g.out_adj(),
    };
    for v in 0..g.num_vertices() {
        let deg = adj.degree(v);
        if deg == 0 {
            continue;
        }
        let inv = 1.0 / deg as f32;
        let gr = grad.row(v);
        for &e in adj.edge_ids(v) {
            for (o, &gv) in out.row_mut(e as usize).iter_mut().zip(gr) {
                *o = gv * inv;
            }
        }
    }
    out
}

/// Edge softmax over destination groups, per column. Returns
/// `(y, max, denom)` where `max`/`denom` are the `O(|V|)` auxiliaries the
/// recomputation pass stashes.
pub fn edge_softmax(g: &Graph, x: &Tensor) -> (Tensor, Tensor, Tensor) {
    let (n, total) = (g.num_vertices(), x.cols());
    let mut maxes = Tensor::full(&[n, total], f32::NEG_INFINITY);
    let mut denom = Tensor::zeros(&[n, total]);
    let mut y = Tensor::zeros(&[g.num_edges(), total]);
    for v in 0..n {
        let ids = g.in_adj().edge_ids(v);
        if ids.is_empty() {
            continue;
        }
        let mr = maxes.row_mut(v);
        for &e in ids {
            for (m, &xv) in mr.iter_mut().zip(x.row(e as usize)) {
                *m = m.max(xv);
            }
        }
        for &e in ids {
            let xr = x.row(e as usize);
            let dr = denom.row_mut(v);
            for c in 0..total {
                dr[c] += (xr[c] - mr[c]).exp();
            }
        }
        for &e in ids {
            let xr = x.row(e as usize);
            let yr = y.row_mut(e as usize);
            let dr = denom.row(v);
            for c in 0..total {
                yr[c] = (xr[c] - mr[c]).exp() / dr[c];
            }
        }
    }
    (y, maxes, denom)
}

/// Rebuilds edge-softmax outputs from the stashed max/denominator in
/// `O(1)` per element (the §6 recompute path).
pub fn edge_softmax_from_aux(g: &Graph, x: &Tensor, maxes: &Tensor, denom: &Tensor) -> Tensor {
    let total = x.cols();
    let mut y = Tensor::zeros(&[g.num_edges(), total]);
    for e in 0..g.num_edges() {
        let v = g.dst(e);
        let (xr, mr, dr) = (x.row(e), maxes.row(v), denom.row(v));
        let yr = y.row_mut(e);
        for c in 0..total {
            yr[c] = (xr[c] - mr[c]).exp() / dr[c];
        }
    }
    y
}

/// Backward of edge softmax:
/// `∂x_e = y_e (g_e − Σ_{e'∈grp(e)} g_{e'} y_{e'})`.
pub fn edge_softmax_bwd(g: &Graph, grad: &Tensor, y: &Tensor) -> Tensor {
    let (n, total) = (g.num_vertices(), grad.cols());
    let mut out = Tensor::zeros(&[g.num_edges(), total]);
    for v in 0..n {
        let ids = g.in_adj().edge_ids(v);
        let mut s = vec![0.0f32; total];
        for &e in ids {
            let (gr, yr) = (grad.row(e as usize), y.row(e as usize));
            for c in 0..total {
                s[c] += gr[c] * yr[c];
            }
        }
        for &e in ids {
            let (gr, yr) = (grad.row(e as usize), y.row(e as usize));
            let or = out.row_mut(e as usize);
            for c in 0..total {
                or[c] = yr[c] * (gr[c] - s[c]);
            }
        }
    }
    out
}

/// Elementwise binary with per-head feature broadcast (`feat == 1` on one
/// side broadcasts across the other side's features).
pub fn binary_broadcast(f: BinaryFn, a: &Tensor, da: Dim, b: &Tensor, db: Dim) -> Tensor {
    assert_eq!(da.heads, db.heads, "head counts must agree");
    let rows = a.rows();
    let heads = da.heads;
    if da.feat == db.feat {
        let mut out = a.clone();
        for r in 0..rows {
            let br = b.row(r);
            for (o, &bv) in out.row_mut(r).iter_mut().zip(br) {
                *o = f.apply(*o, bv);
            }
        }
        return out;
    }
    let feat = da.feat.max(db.feat);
    let mut out = Tensor::zeros(&[rows, heads * feat]);
    for r in 0..rows {
        let (ar, br) = (a.row(r), b.row(r));
        let or = out.row_mut(r);
        for h in 0..heads {
            for c in 0..feat {
                let av = if da.feat == 1 {
                    ar[h]
                } else {
                    ar[h * feat + c]
                };
                let bv = if db.feat == 1 {
                    br[h]
                } else {
                    br[h * feat + c]
                };
                or[h * feat + c] = f.apply(av, bv);
            }
        }
    }
    out
}

/// `UnaryBwd`: `grad · f'(x)`.
pub fn unary_bwd(f: UnaryFn, grad: &Tensor, x: &Tensor) -> Tensor {
    let mut out = grad.clone();
    for (o, &xv) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o *= f.derivative(xv);
    }
    out
}

/// Per-head dot product with a parameter: `[N, h·f] × [h, f] → [N, h]`.
pub fn head_dot(x: &Tensor, a: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, heads]);
    for r in 0..rows {
        let xr = x.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            let ar = a.row(h);
            let mut acc = 0.0;
            for c in 0..feat {
                acc += xr[h * feat + c] * ar[c];
            }
            or[h] = acc;
        }
    }
    out
}

/// Backward of [`head_dot`] w.r.t. the data: `out[r, h·f+c] = g[r,h]·a[h,c]`.
pub fn head_dot_bwd_input(grad: &Tensor, a: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = grad.rows();
    let mut out = Tensor::zeros(&[rows, heads * feat]);
    for r in 0..rows {
        let gr = grad.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            let ar = a.row(h);
            for c in 0..feat {
                or[h * feat + c] = gr[h] * ar[c];
            }
        }
    }
    out
}

/// Backward of [`head_dot`] w.r.t. the parameter:
/// `out[h, c] = Σ_r g[r,h]·x[r, h·f+c]`.
pub fn head_dot_bwd_param(x: &Tensor, grad: &Tensor, heads: usize, feat: usize) -> Tensor {
    let mut out = Tensor::zeros(&[heads, feat]);
    for r in 0..x.rows() {
        let (xr, gr) = (x.row(r), grad.row(r));
        for h in 0..heads {
            let or = out.row_mut(h);
            for c in 0..feat {
                or[c] += gr[h] * xr[h * feat + c];
            }
        }
    }
    out
}

/// Gaussian mixture weights (MoNet):
/// `w[e,k] = exp(-½ Σ_j σ⁻²[k,j](p[e,j]−μ[k,j])²)`.
pub fn gaussian_weight(pseudo: &Tensor, mu: &Tensor, inv_sigma: &Tensor) -> Tensor {
    let (e, r) = (pseudo.rows(), pseudo.cols());
    let k = mu.rows();
    let mut out = Tensor::zeros(&[e, k]);
    for ei in 0..e {
        let pr = pseudo.row(ei);
        let or = out.row_mut(ei);
        for (ki, ov) in or.iter_mut().enumerate().take(k) {
            let (mr, sr) = (mu.row(ki), inv_sigma.row(ki));
            let mut acc = 0.0;
            for j in 0..r {
                let d = (pr[j] - mr[j]) * sr[j];
                acc += d * d;
            }
            *ov = (-0.5 * acc).exp();
        }
    }
    out
}

/// `∂L/∂μ[k,j] = Σ_e g[e,k]·w[e,k]·σ⁻²[k,j]·(p[e,j]−μ[k,j])`.
pub fn gaussian_bwd_mu(
    pseudo: &Tensor,
    w: &Tensor,
    grad: &Tensor,
    mu: &Tensor,
    inv_sigma: &Tensor,
) -> Tensor {
    let (e, r) = (pseudo.rows(), pseudo.cols());
    let k = mu.rows();
    let mut out = Tensor::zeros(&[k, r]);
    for ei in 0..e {
        let (pr, wr, gr) = (pseudo.row(ei), w.row(ei), grad.row(ei));
        for ki in 0..k {
            let coeff = gr[ki] * wr[ki];
            if coeff == 0.0 {
                continue;
            }
            let (mr, sr) = (mu.row(ki), inv_sigma.row(ki));
            let or = out.row_mut(ki);
            for j in 0..r {
                or[j] += coeff * sr[j] * sr[j] * (pr[j] - mr[j]);
            }
        }
    }
    out
}

/// `∂L/∂σ⁻¹[k,j] = −Σ_e g[e,k]·w[e,k]·σ⁻¹[k,j]·(p[e,j]−μ[k,j])²`.
pub fn gaussian_bwd_sigma(
    pseudo: &Tensor,
    w: &Tensor,
    grad: &Tensor,
    mu: &Tensor,
    inv_sigma: &Tensor,
) -> Tensor {
    let (e, r) = (pseudo.rows(), pseudo.cols());
    let k = mu.rows();
    let mut out = Tensor::zeros(&[k, r]);
    for ei in 0..e {
        let (pr, wr, gr) = (pseudo.row(ei), w.row(ei), grad.row(ei));
        for ki in 0..k {
            let coeff = gr[ki] * wr[ki];
            if coeff == 0.0 {
                continue;
            }
            let (mr, sr) = (mu.row(ki), inv_sigma.row(ki));
            let or = out.row_mut(ki);
            for j in 0..r {
                let d = pr[j] - mr[j];
                or[j] -= coeff * sr[j] * d * d;
            }
        }
    }
    out
}

/// Per-head column slice `[start, end)` (feat units).
pub fn slice_cols(x: &Tensor, heads: usize, feat: usize, start: usize, end: usize) -> Tensor {
    let rows = x.rows();
    let w = end - start;
    let mut out = Tensor::zeros(&[rows, heads * w]);
    for r in 0..rows {
        let xr = x.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            or[h * w..(h + 1) * w].copy_from_slice(&xr[h * feat + start..h * feat + end]);
        }
    }
    out
}

/// Backward of [`slice_cols`]: embed into zero-padded columns.
pub fn embed_cols(
    grad: &Tensor,
    heads: usize,
    total_feat: usize,
    start: usize,
    end: usize,
) -> Tensor {
    let rows = grad.rows();
    let w = end - start;
    let mut out = Tensor::zeros(&[rows, heads * total_feat]);
    for r in 0..rows {
        let gr = grad.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            or[h * total_feat + start..h * total_feat + end]
                .copy_from_slice(&gr[h * w..(h + 1) * w]);
        }
    }
    out
}

/// Head reduction `[N, h·f] → [N, f]` (`Sum` or `Mean`).
pub fn head_reduce(x: &Tensor, heads: usize, feat: usize, mean: bool) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, feat]);
    let scale = if mean { 1.0 / heads as f32 } else { 1.0 };
    for r in 0..rows {
        let xr = x.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            for c in 0..feat {
                or[c] += xr[h * feat + c] * scale;
            }
        }
    }
    out
}

/// Head broadcast `[N, f] → [N, h·f]`.
pub fn head_broadcast(x: &Tensor, heads: usize) -> Tensor {
    let (rows, feat) = (x.rows(), x.cols());
    let mut out = Tensor::zeros(&[rows, heads * feat]);
    for r in 0..rows {
        let xr = x.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            or[h * feat..(h + 1) * feat].copy_from_slice(xr);
        }
    }
    out
}

/// Per-head feature sum `[N, h·f] → [N, h]`.
pub fn feat_sum(x: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, heads]);
    for r in 0..rows {
        let xr = x.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            or[h] = xr[h * feat..(h + 1) * feat].iter().sum();
        }
    }
    out
}

/// Per-head feature broadcast `[N, h] → [N, h·f]`.
pub fn feat_broadcast(x: &Tensor, heads: usize, feat: usize) -> Tensor {
    let rows = x.rows();
    let mut out = Tensor::zeros(&[rows, heads * feat]);
    for r in 0..rows {
        let xr = x.row(r);
        let or = out.row_mut(r);
        for h in 0..heads {
            for c in 0..feat {
                or[h * feat + c] = xr[h];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_graph::EdgeList;

    /// 0 → 1, 0 → 2, 1 → 2 (edge ids in dst-major order).
    fn tri() -> Graph {
        Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]))
    }

    fn vfeat() -> Tensor {
        Tensor::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]).unwrap()
    }

    #[test]
    fn scatter_variants() {
        let g = tri();
        let x = vfeat();
        let cu = scatter(&g, ScatterFn::CopyU, &x, &x, Dim::flat(2));
        // edges: (0→1), (0→2), (1→2)
        assert_eq!(cu.row(0), &[1.0, 10.0]);
        assert_eq!(cu.row(2), &[2.0, 20.0]);
        let cv = scatter(&g, ScatterFn::CopyV, &x, &x, Dim::flat(2));
        assert_eq!(cv.row(0), &[2.0, 20.0]);
        let sub = scatter(&g, ScatterFn::Bin(BinaryFn::Sub), &x, &x, Dim::flat(2));
        assert_eq!(sub.row(0), &[-1.0, -10.0]);
        assert_eq!(sub.row(2), &[-1.0, -10.0]);
    }

    #[test]
    fn scatter_concat_per_head() {
        let g = tri();
        // 2 heads × 1 feat
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let cat = scatter(&g, ScatterFn::ConcatUV, &x, &x, Dim::multi(2, 2));
        // edge 0: u=0 (heads 1,2), v=1 (heads 3,4) → per-head: [1,3, 2,4]
        assert_eq!(cat.row(0), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn gather_sum_and_dual() {
        let g = tri();
        let e = Tensor::from_rows(&[&[1.0], &[2.0], &[4.0]]).unwrap();
        let (by_dst, _) = gather(&g, ReduceFn::Sum, EdgeGroup::ByDst, &e);
        assert_eq!(by_dst.as_slice(), &[0.0, 1.0, 6.0]);
        let (by_src, _) = gather(&g, ReduceFn::Sum, EdgeGroup::BySrc, &e);
        assert_eq!(by_src.as_slice(), &[3.0, 4.0, 0.0]);
    }

    #[test]
    fn gather_max_records_argmax() {
        let g = tri();
        let e = Tensor::from_rows(&[&[5.0], &[2.0], &[7.0]]).unwrap();
        let (mx, am) = gather(&g, ReduceFn::Max, EdgeGroup::ByDst, &e);
        let am = am.unwrap();
        assert_eq!(mx.as_slice(), &[0.0, 5.0, 7.0]);
        assert_eq!(am, vec![NO_ARGMAX, 0, 2]);
        let grad = Tensor::from_rows(&[&[1.0], &[3.0], &[9.0]]).unwrap();
        let eg = gather_max_bwd(&g, &grad, &am);
        assert_eq!(eg.as_slice(), &[3.0, 0.0, 9.0]);
    }

    #[test]
    fn softmax_groups_sum_to_one() {
        let g = tri();
        let e = Tensor::from_rows(&[&[0.3], &[1.5], &[-0.7]]).unwrap();
        let (y, maxes, denom) = edge_softmax(&g, &e);
        // dst=1 group: {edge 0} → 1.0; dst=2 group: {edges 1, 2} sums to 1.
        assert!((y.at(0, 0) - 1.0).abs() < 1e-6);
        assert!((y.at(1, 0) + y.at(2, 0) - 1.0).abs() < 1e-6);
        // Recompute path agrees.
        let y2 = edge_softmax_from_aux(&g, &e, &maxes, &denom);
        assert!(y.allclose(&y2));
    }

    #[test]
    fn softmax_bwd_matches_finite_difference() {
        let g = tri();
        let x = Tensor::from_rows(&[&[0.2], &[0.9], &[-0.4]]).unwrap();
        let gout = Tensor::from_rows(&[&[1.0], &[-2.0], &[0.5]]).unwrap();
        let (y, _, _) = edge_softmax(&g, &x);
        let ana = edge_softmax_bwd(&g, &gout, &y);
        let h = 1e-3f32;
        for e in 0..3 {
            let mut xp = x.clone();
            xp.row_mut(e)[0] += h;
            let mut xm = x.clone();
            xm.row_mut(e)[0] -= h;
            let (yp, _, _) = edge_softmax(&g, &xp);
            let (ym, _, _) = edge_softmax(&g, &xm);
            let mut num = 0.0;
            for i in 0..3 {
                num += gout.at(i, 0) * (yp.at(i, 0) - ym.at(i, 0)) / (2.0 * h);
            }
            assert!(
                (num - ana.at(e, 0)).abs() < 1e-2,
                "edge {e}: numeric {num} vs analytic {}",
                ana.at(e, 0)
            );
        }
    }

    #[test]
    fn binary_broadcast_per_head_scalar() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap(); // 2 heads × 2
        let b = Tensor::from_rows(&[&[10.0, 100.0]]).unwrap(); // 2 heads × 1
        let out = binary_broadcast(BinaryFn::Mul, &a, Dim::multi(2, 2), &b, Dim::multi(2, 1));
        assert_eq!(out.as_slice(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn head_dot_roundtrip_gradients() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]).unwrap();
        let a = Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]).unwrap();
        let y = head_dot(&x, &a, 2, 2);
        assert_eq!(y.row(0), &[1.0 * 0.5 - 2.0, 3.0 * 2.0]);
        let gi = head_dot_bwd_input(&y, &a, 2, 2);
        assert_eq!(gi.shape(), &[2, 4]);
        let gp = head_dot_bwd_param(&x, &y, 2, 2);
        assert_eq!(gp.shape(), &[2, 2]);
    }

    #[test]
    fn gaussian_weight_peak_at_mu() {
        let p = Tensor::from_rows(&[&[1.0, 2.0], &[0.0, 0.0]]).unwrap();
        let mu = Tensor::from_rows(&[&[1.0, 2.0]]).unwrap();
        let sig = Tensor::from_rows(&[&[1.0, 1.0]]).unwrap();
        let w = gaussian_weight(&p, &mu, &sig);
        assert!((w.at(0, 0) - 1.0).abs() < 1e-6, "exact match → weight 1");
        assert!(w.at(1, 0) < 1.0);
    }

    #[test]
    fn gaussian_grads_match_finite_difference() {
        let p = Tensor::from_rows(&[&[0.5, -0.3], &[1.1, 0.2], &[-0.4, 0.9]]).unwrap();
        let mu = Tensor::from_rows(&[&[0.1, 0.4], &[-0.2, 0.3]]).unwrap();
        let sig = Tensor::from_rows(&[&[1.2, 0.8], &[0.5, 1.5]]).unwrap();
        let grad = Tensor::from_rows(&[&[1.0, -0.5], &[0.3, 0.7], &[-0.2, 0.4]]).unwrap();
        let w = gaussian_weight(&p, &mu, &sig);
        let gmu = gaussian_bwd_mu(&p, &w, &grad, &mu, &sig);
        let gsig = gaussian_bwd_sigma(&p, &w, &grad, &mu, &sig);
        let h = 1e-3f32;
        let loss = |mu: &Tensor, sig: &Tensor| -> f32 {
            let w = gaussian_weight(&p, mu, sig);
            w.as_slice()
                .iter()
                .zip(grad.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for k in 0..2 {
            for j in 0..2 {
                let mut mp = mu.clone();
                mp.set(k, j, mu.at(k, j) + h);
                let mut mm = mu.clone();
                mm.set(k, j, mu.at(k, j) - h);
                let num = (loss(&mp, &sig) - loss(&mm, &sig)) / (2.0 * h);
                assert!(
                    (num - gmu.at(k, j)).abs() < 1e-2,
                    "mu[{k},{j}]: {num} vs {}",
                    gmu.at(k, j)
                );
                let mut sp = sig.clone();
                sp.set(k, j, sig.at(k, j) + h);
                let mut sm = sig.clone();
                sm.set(k, j, sig.at(k, j) - h);
                let num = (loss(&mu, &sp) - loss(&mu, &sm)) / (2.0 * h);
                assert!(
                    (num - gsig.at(k, j)).abs() < 1e-2,
                    "sig[{k},{j}]: {num} vs {}",
                    gsig.at(k, j)
                );
            }
        }
    }

    #[test]
    fn slice_embed_roundtrip() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]).unwrap(); // 2 heads × 3
        let s = slice_cols(&x, 2, 3, 1, 3);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 5.0, 6.0]);
        let e = embed_cols(&s, 2, 3, 1, 3);
        assert_eq!(e.as_slice(), &[0.0, 2.0, 3.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn head_reduce_broadcast_featsum() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap(); // 2 heads × 2
        assert_eq!(head_reduce(&x, 2, 2, false).as_slice(), &[4.0, 6.0]);
        assert_eq!(head_reduce(&x, 2, 2, true).as_slice(), &[2.0, 3.0]);
        let b = head_broadcast(&Tensor::from_rows(&[&[7.0, 8.0]]).unwrap(), 2);
        assert_eq!(b.as_slice(), &[7.0, 8.0, 7.0, 8.0]);
        assert_eq!(feat_sum(&x, 2, 2).as_slice(), &[3.0, 7.0]);
        assert_eq!(
            feat_broadcast(&Tensor::from_rows(&[&[3.0, 7.0]]).unwrap(), 2, 2).as_slice(),
            &[3.0, 3.0, 7.0, 7.0]
        );
    }

    #[test]
    fn gather_mean_and_backward() {
        let g = tri();
        let e = Tensor::from_rows(&[&[2.0], &[4.0], &[6.0]]).unwrap();
        let (m, _) = gather(&g, ReduceFn::Mean, EdgeGroup::ByDst, &e);
        assert_eq!(m.as_slice(), &[0.0, 2.0, 5.0]);
        let grad = Tensor::from_rows(&[&[0.0], &[1.0], &[4.0]]).unwrap();
        let back = gather_mean_bwd(&g, EdgeGroup::ByDst, &grad);
        assert_eq!(back.as_slice(), &[1.0, 2.0, 2.0]);
    }
}

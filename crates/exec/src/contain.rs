//! Panic containment for scoped kernel workers.
//!
//! `std::thread::scope` re-raises a child panic on the joining thread
//! with a generic payload ("a scoped thread panicked"), losing the
//! original message and unwinding straight out of the step. Every
//! worker body spawned by this crate therefore runs under
//! [`WorkerGuard::run`]: the first panic's payload is captured, the
//! remaining workers drain normally, and [`WorkerGuard::rethrow`]
//! re-raises a single [`ContainedPanic`] on the spawning thread after
//! the scope has joined. `Session::exec_kernel` catches it once at
//! kernel dispatch, translates it into `ExecError::KernelPanic`, and
//! poisons the session.
//!
//! The guard also hosts the `worker` failpoint (`GNNOPT_FAILPOINTS`):
//! any armed action at that site is treated as an injected worker
//! panic — the worker body is skipped and a synthetic payload is
//! recorded, without actually unwinding (so chaos tests stay quiet).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use gnnopt_tensor::fault;

/// Wrapper payload for a panic that was contained in a worker and is
/// being re-raised on the spawning thread.
pub(crate) struct ContainedPanic(pub String);

/// Captures the first panic among a scope's workers.
#[derive(Default)]
pub(crate) struct WorkerGuard {
    first: Mutex<Option<String>>,
}

impl WorkerGuard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one worker body, recording a panic instead of letting it
    /// tear down the scope.
    pub fn run(&self, f: impl FnOnce()) {
        if fault::check("worker").is_some() {
            self.record(fault::injected_panic_message("worker"));
            return;
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
            self.record(payload_str(p.as_ref()));
        }
    }

    fn record(&self, payload: String) {
        let mut slot = self.first.lock().unwrap_or_else(|p| p.into_inner());
        slot.get_or_insert(payload);
    }

    /// Re-raises the first recorded panic (if any); call after the
    /// scope has joined so no worker is abandoned mid-write.
    pub fn rethrow(self) {
        let payload = self.first.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(p) = payload {
            std::panic::panic_any(ContainedPanic(p));
        }
    }
}

/// Best-effort string form of a panic payload.
pub(crate) fn payload_str(p: &(dyn Any + Send)) -> String {
    if let Some(c) = p.downcast_ref::<ContainedPanic>() {
        c.0.clone()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_first_panic_and_rethrows_contained() {
        let wg = WorkerGuard::new();
        wg.run(|| {});
        wg.run(|| panic!("worker {} died", 3));
        wg.run(|| panic!("second panic is dropped"));
        let err = catch_unwind(AssertUnwindSafe(|| wg.rethrow())).unwrap_err();
        assert_eq!(payload_str(err.as_ref()), "worker 3 died");
    }

    #[test]
    fn clean_scope_rethrows_nothing() {
        let wg = WorkerGuard::new();
        wg.run(|| {});
        wg.rethrow(); // must not panic
    }

    #[test]
    fn payloads_stringify() {
        assert_eq!(payload_str(&ContainedPanic("x".into())), "x");
        assert_eq!(payload_str(&"s"), "s");
        assert_eq!(payload_str(&String::from("t")), "t");
        assert_eq!(payload_str(&42_u32), "non-string panic payload");
    }
}

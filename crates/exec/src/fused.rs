//! Tiled execution of lowered [`KernelProgram`]s: fusion realized on the
//! host, not just in the analytical model.
//!
//! The reference path in `session.rs` materializes every node of a fused
//! kernel as a full tensor, so fusion only changes the *accounting*. This
//! interpreter executes a program over CSR **destination-vertex ranges**
//! (tiles): scratch-class members live only as per-tile rows inside a
//! worker-local arena, so the `O(|E|·d)` intermediates of a
//! gather→edge-op→scatter chain never exist in memory — the measured
//! `peak_value_bytes` drops toward what `gnnopt-sim` predicts for the
//! fused plan (interior spills, see `gnnopt_core::lower`, are the
//! remaining gap).
//!
//! # Streamed full steps
//!
//! A whole-graph `BySrc` gather (a full step) normally forces its input
//! to spill as an interior tensor: the tiled segment writes `O(|E|·d)`
//! rows the full step immediately re-reads. When that gather is the
//! spill's only consumer and the producer chain is per-edge computable
//! ([`plan_streams`]), the chain is elided from the tiled segments and
//! compiled to per-edge micro-ops ([`StreamEval`]) evaluated inside the
//! gather's own ascending edge scan: pure copies are aliased away,
//! vertex-space steps are memoized per edge group, and the spill never
//! exists. This is the dominant backward-phase cost of GAT/GCN on
//! power-law graphs; eliding it is worth >3× on a GCN backward pass.
//!
//! # Tiling and determinism
//!
//! Destination tiles are cut greedily along `indptr` with at most
//! [`gnnopt_core::ExecPolicy::tile_edges`] edges per tile (a single
//! vertex whose in-degree exceeds the budget still gets one intact tile —
//! reduction groups never split). Because the canonical edge numbering is
//! destination-major, a tile `[v0, v1)` owns the contiguous edge rows
//! `[indptr[v0], indptr[v1])`, every `ByDst` group is wholly inside one
//! tile, and per-vertex edge order is preserved. Each step executes the
//! *same expressions in the same order* as the reference kernels in
//! [`crate::kernels`] — since PR 5 both literally call the shared
//! feature-axis loops of [`gnnopt_tensor::rowops`] — so fused results are
//! **bit-identical** to the node-by-node path for any tile budget and any
//! thread count.
//!
//! # Parallelism and scratch
//!
//! Tiles are distributed over `std::thread::scope` workers in contiguous
//! runs (reusing the `ExecPolicy` partitioning of PR 2), so each worker
//! writes disjoint contiguous row ranges of the materialized outputs and
//! auxiliaries — no atomics. Every worker owns one scratch arena sized
//! for its largest tile and reuses it across its tiles; the total arena
//! footprint is reported as `RunStats::scratch_bytes`.

use crate::kernels::{
    chunk_bounds, plan_threads, reduce_row_mean, reduce_row_sum, split_rows, vertex_bounds,
    NO_ARGMAX,
};
use crate::{contain, ExecError, Result};
use gnnopt_core::lower::{KernelProgram, StepExec, Storage};
use gnnopt_core::{
    Dim, EdgeGroup, ExecPolicy, IrGraph, Node, NodeId, OpKind, ReduceFn, ScatterFn, Space,
};
use gnnopt_graph::Graph;
use gnnopt_tensor::{pool, rowops, Tensor};
use std::collections::{HashMap, HashSet};

/// Everything a fused kernel launch produced for the session's stores.
pub(crate) struct ProgramResult {
    /// Every full tensor the program produced, in step order: boundary
    /// values *and* interior spills. The session retires the spills as
    /// soon as the kernel finishes (death lists for ordinary members, the
    /// explicit recompute drop for spilled recompute values), so they
    /// only count toward the peak while they are genuinely alive.
    pub outputs: Vec<(NodeId, Tensor)>,
    /// Freshly computed edge-softmax auxiliaries (max, denominator).
    pub new_aux_softmax: Vec<(NodeId, (Tensor, Tensor))>,
    /// Freshly computed gather-max argmax tables.
    pub new_aux_argmax: Vec<(NodeId, Vec<u32>)>,
    /// High-water mark of scratch-arena bytes across workers (max over
    /// the program's tiled segments).
    pub scratch_bytes: u64,
    /// Bytes of dying inputs the launch freed mid-flight (arena mode):
    /// already removed from the store the caller lent us, so the session
    /// subtracts them from its live accounting.
    pub evicted_bytes: u64,
}

/// Where a step operand's rows come from at tile-execution time.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// A live full tensor in the session's value store.
    Global(NodeId),
    /// A same-segment step's scratch slot (tile-relative rows).
    Slot {
        /// Index into `KernelProgram::steps`.
        step: usize,
        cols: usize,
        space: Space,
    },
    /// An earlier segment's materialized/interior tensor (full rows,
    /// complete before this segment runs).
    Mat(usize),
    /// A prelude tensor (parameter-space view, full rows).
    Prelude(usize),
}

/// Per-step execution metadata, precomputed once per launch.
struct StepPlan {
    node: NodeId,
    space: Space,
    cols: usize,
    storage: Storage,
    srcs: Vec<Src>,
    /// Input dims (`ir.node(inputs[i]).dim`), for broadcast/head layout.
    dins: Vec<Dim>,
}

/// Which edge endpoint a vertex-space chain step is instantiated at
/// during a streamed scan, inherited from the scatter that consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anchor {
    /// Evaluated at `src(e)` (feeds a `CopyU` / `Bin` u-operand).
    Src,
    /// Evaluated at `dst(e)` (feeds a `CopyV` / `Bin` v-operand).
    Dst,
}

/// A full-step `BySrc` gather whose interior input chain is evaluated
/// inside the ascending edge scan instead of being materialized by the
/// tiled segment (see [`plan_streams`]).
struct StreamChain {
    /// Chain steps in dependency order (every `Src::Slot` operand of a
    /// step appears before the step itself); the last entry is the
    /// interior root the gather reads.
    order: Vec<usize>,
    /// Anchors for the vertex-space chain steps.
    anchors: HashMap<usize, Anchor>,
}

/// Finds full-step `Gather(Sum|Mean, BySrc)` reductions whose whole
/// producer chain can be evaluated per edge inside the gather's scan.
///
/// A source-grouped reduction cannot tile by destination, so lowering
/// runs it as a whole-graph full step and spills its input — an
/// `O(|E|·d)` interior tensor the tiled segment writes and the full step
/// immediately re-reads (for a 64-wide RMAT-16 layer that is ~270 MB of
/// traffic each way, the dominant backward cost of GAT and GCN). When
/// that interior is consumed by nothing else and every step of its
/// producer chain is per-edge computable from full tensors — scatter
/// broadcasts, elementwise ops, stash-backed softmax recomputes — the
/// chain is *elided from the tiled segment entirely* and re-evaluated
/// inside the gather's ascending edge scan, so the edge-space
/// intermediate never exists in memory.
///
/// **Determinism**: the streamed scan evaluates the *same expressions*
/// as the tiled steps (the same [`rowops`] calls on the same rows) and
/// accumulates each output row in ascending canonical edge order —
/// exactly the `BySrc` order of [`crate::kernels::gather`] — so results
/// stay bit-identical to the materializing path for any thread count.
fn plan_streams(
    steps: &[StepPlan],
    program: &KernelProgram,
    ir: &IrGraph,
    aux_softmax: &HashMap<NodeId, (Tensor, Tensor)>,
) -> HashMap<usize, StreamChain> {
    // Recursive chain walk: `anchor` is the vertex endpoint this operand
    // must be instantiated at (vertex-space operands only). Returns false
    // as soon as anything in the chain is not per-edge evaluable.
    #[allow(clippy::too_many_arguments)]
    fn visit(
        si: usize,
        anchor: Option<Anchor>,
        steps: &[StepPlan],
        program: &KernelProgram,
        ir: &IrGraph,
        aux_softmax: &HashMap<NodeId, (Tensor, Tensor)>,
        order: &mut Vec<usize>,
        anchors: &mut HashMap<usize, Anchor>,
        visited: &mut HashSet<usize>,
    ) -> bool {
        let sp = &steps[si];
        if sp.space == Space::Vertex {
            // A vertex-space step needs a consistent endpoint to be
            // instantiated at; two consumers disagreeing (or a direct
            // edge-space read) make the chain ineligible.
            let Some(a) = anchor else { return false };
            match anchors.get(&si) {
                Some(&prev) if prev != a => return false,
                _ => {
                    anchors.insert(si, a);
                }
            }
        }
        if !visited.insert(si) {
            return true;
        }
        // Only tiled scratch/interior members can be elided: materialized
        // steps are kernel boundaries the session must still receive, and
        // full steps have whole-graph semantics of their own.
        if program.steps[si].exec != StepExec::Tiled
            || !matches!(sp.storage, Storage::Scratch | Storage::Interior)
        {
            return false;
        }
        let mut rec = |src: Src, a: Option<Anchor>| -> bool {
            match src {
                // Full tensors (value store, prelude views, earlier
                // segments) are readable row-by-row during the scan.
                Src::Global(_) | Src::Prelude(_) | Src::Mat(_) => true,
                Src::Slot { step, .. } => visit(
                    step,
                    a,
                    steps,
                    program,
                    ir,
                    aux_softmax,
                    order,
                    anchors,
                    visited,
                ),
            }
        };
        let ok = match &ir.node(sp.node).kind {
            OpKind::Scatter(f) if sp.space == Space::Edge => {
                let x = sp.srcs[0];
                let y = *sp.srcs.last().expect("scatter has inputs");
                match f {
                    ScatterFn::CopyU => rec(x, Some(Anchor::Src)),
                    ScatterFn::CopyV => rec(y, Some(Anchor::Dst)),
                    ScatterFn::Bin(_) => rec(x, Some(Anchor::Src)) && rec(y, Some(Anchor::Dst)),
                    ScatterFn::ConcatUV => false,
                }
            }
            // Softmax is per-edge only when the forward max/denominator
            // are stashed (the recomputation plan's O(|V|) auxiliaries).
            OpKind::EdgeSoftmax => aux_softmax.contains_key(&sp.node) && rec(sp.srcs[0], None),
            OpKind::Unary(_)
            | OpKind::UnaryBwd(_)
            | OpKind::Binary(_)
            | OpKind::SetHeads { .. }
            | OpKind::FeatSum => {
                // A vertex-space elementwise step propagates its own
                // anchor (validated above) down to its operands.
                let a = if sp.space == Space::Vertex {
                    anchor
                } else {
                    None
                };
                sp.srcs.iter().all(|&s| rec(s, a))
            }
            _ => false,
        };
        if ok {
            order.push(si);
        }
        ok
    }

    let mut streams = HashMap::new();
    for (si, sp) in steps.iter().enumerate() {
        if program.steps[si].exec != StepExec::Full {
            continue;
        }
        let OpKind::Gather {
            reduce: ReduceFn::Sum | ReduceFn::Mean,
            group: EdgeGroup::BySrc,
        } = ir.node(sp.node).kind
        else {
            continue;
        };
        let Src::Mat(root) = sp.srcs[0] else { continue };
        // Only an interior spill can be elided — and only when this
        // gather is its sole consumer (checked below over all steps).
        if steps[root].storage != Storage::Interior || steps[root].space != Space::Edge {
            continue;
        }
        let mut order = Vec::new();
        let mut anchors = HashMap::new();
        let mut visited = HashSet::new();
        if !visit(
            root,
            None,
            steps,
            program,
            ir,
            aux_softmax,
            &mut order,
            &mut anchors,
            &mut visited,
        ) {
            continue;
        }
        // Every chain step must be consumed inside the chain (or, for the
        // root, by this gather alone) — otherwise the tiled segment still
        // has to produce it and nothing is saved.
        let chain: HashSet<usize> = order.iter().copied().collect();
        let sole = steps.iter().enumerate().all(|(ti, tp)| {
            ti == si
                || chain.contains(&ti)
                || tp.srcs.iter().all(|s| match *s {
                    Src::Slot { step, .. } => !chain.contains(&step),
                    Src::Mat(mi) => !chain.contains(&mi),
                    _ => true,
                })
        });
        if !sole {
            continue;
        }
        streams.insert(si, StreamChain { order, anchors });
    }
    streams
}

/// Which row of a full tensor a pre-resolved operand reads.
#[derive(Clone, Copy)]
enum RowAt {
    /// The consumer step's own row (anchor vertex or edge id).
    Own,
    /// Fixed at `src(e)` / `dst(e)` / `e` — used when a pure copy step
    /// (`CopyU`/`CopyV`/`SetHeads`) is aliased away and its read
    /// location must survive into the consumer.
    SrcV,
    DstV,
    Edge,
}

/// A pre-resolved operand of a compiled chain step: an earlier chain
/// position's row buffer, or a full tensor read at some row.
#[derive(Clone, Copy)]
enum MSrc<'a> {
    Buf(usize),
    Base(&'a Tensor, RowAt),
}

/// One chain step compiled for the per-edge loop: op kind borrowed from
/// the IR, operands resolved to buffers/tensors, anchor inlined — the
/// hot loop never touches a hash map or the step table.
struct MicroOp<'a> {
    kind: &'a OpKind,
    /// `Some` for vertex-space steps (memoized on their last row),
    /// `None` for edge-space ones.
    anchor: Option<Anchor>,
    srcs: Vec<MSrc<'a>>,
    dins: &'a [Dim],
    /// Stashed (max, denominator) tables for `EdgeSoftmax` members.
    aux: Option<(&'a Tensor, &'a Tensor)>,
}

/// Per-worker chain evaluator for a streamed gather: one single-row
/// buffer per chain position, refilled per edge. Vertex-space steps
/// cache the row they were last instantiated at — under the
/// destination-major canonical edge order a `Dst`-anchored step
/// therefore evaluates once per destination group, not once per edge.
/// Pure copy steps (`CopyU`/`CopyV`/`SetHeads`) are aliased away at
/// compile time: their consumers read the copy's source directly, with
/// the read location pinned via [`RowAt`], so no per-edge copy runs.
struct StreamEval<'a> {
    g: &'a Graph,
    /// Non-aliased steps as (chain position, compiled op).
    ops: Vec<(usize, MicroOp<'a>)>,
    /// Where the gather reads the chain's result.
    root: MSrc<'a>,
    /// One row buffer per chain position (empty for aliased positions).
    bufs: Vec<Vec<f32>>,
    /// Last vertex each position was evaluated at (vertex steps only).
    cache: Vec<usize>,
}

impl<'a> StreamEval<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        chain: &'a StreamChain,
        steps: &'a [StepPlan],
        g: &'a Graph,
        ir: &'a IrGraph,
        mat: &'a [Option<Tensor>],
        values: &'a HashMap<NodeId, Tensor>,
        preludes: &'a [Tensor],
        aux_softmax: &'a HashMap<NodeId, (Tensor, Tensor)>,
    ) -> Self {
        let mut pos: HashMap<usize, usize> = HashMap::new();
        for (i, &si) in chain.order.iter().enumerate() {
            pos.insert(si, i);
        }
        // `alias[i]` replaces reads of position `i` when the step is a
        // pure copy; built in chain order so aliases of aliases resolve.
        let mut alias: Vec<Option<MSrc<'a>>> = vec![None; chain.order.len()];
        let resolve = |s: Src, alias: &[Option<MSrc<'a>>]| -> MSrc<'a> {
            match s {
                Src::Slot { step, .. } => {
                    let j = pos[&step];
                    alias[j].unwrap_or(MSrc::Buf(j))
                }
                Src::Global(id) => MSrc::Base(&values[&id], RowAt::Own),
                Src::Prelude(i) => MSrc::Base(&preludes[i], RowAt::Own),
                Src::Mat(mi) => MSrc::Base(
                    mat[mi].as_ref().expect("earlier segment is complete"),
                    RowAt::Own,
                ),
            }
        };
        // Pin a copy's read location into the aliased operand: buffers
        // already hold the right row; `Own`-addressed tensors take the
        // copy step's own location.
        let pin = |s: MSrc<'a>, at: RowAt| -> MSrc<'a> {
            match s {
                MSrc::Base(t, RowAt::Own) => MSrc::Base(t, at),
                other => other,
            }
        };
        let mut ops: Vec<(usize, MicroOp<'a>)> = Vec::new();
        let mut bufs: Vec<Vec<f32>> = vec![Vec::new(); chain.order.len()];
        for (i, &si) in chain.order.iter().enumerate() {
            let sp = &steps[si];
            let kind = &ir.node(sp.node).kind;
            let anchor = chain.anchors.get(&si).copied();
            // Copies alias to their source instead of compiling to an op.
            match kind {
                OpKind::Scatter(ScatterFn::CopyU) => {
                    alias[i] = Some(pin(resolve(sp.srcs[0], &alias), RowAt::SrcV));
                    continue;
                }
                OpKind::Scatter(ScatterFn::CopyV) => {
                    let y = *sp.srcs.last().expect("scatter has inputs");
                    alias[i] = Some(pin(resolve(y, &alias), RowAt::DstV));
                    continue;
                }
                OpKind::SetHeads { .. } => {
                    let at = match anchor {
                        Some(Anchor::Src) => RowAt::SrcV,
                        Some(Anchor::Dst) => RowAt::DstV,
                        None => RowAt::Edge,
                    };
                    alias[i] = Some(pin(resolve(sp.srcs[0], &alias), at));
                    continue;
                }
                _ => {}
            }
            bufs[i] = vec![0.0; sp.cols];
            ops.push((
                i,
                MicroOp {
                    kind,
                    anchor,
                    srcs: sp.srcs.iter().map(|&s| resolve(s, &alias)).collect(),
                    dins: &sp.dins,
                    aux: matches!(kind, OpKind::EdgeSoftmax).then(|| {
                        let (mx, dn) = &aux_softmax[&sp.node];
                        (mx, dn)
                    }),
                },
            ));
        }
        let last = chain.order.len() - 1;
        StreamEval {
            g,
            root: alias[last].unwrap_or(MSrc::Buf(last)),
            cache: vec![usize::MAX; chain.order.len()],
            ops,
            bufs,
        }
    }

    /// Evaluates the whole chain at edge `e` and returns the root row.
    /// Every arm reproduces the matching [`exec_step`] arm on one row —
    /// same `rowops` calls, same broadcast layout — so streamed values
    /// are bit-identical to the tiled segment's.
    fn eval(&mut self, e: usize) -> &[f32] {
        let (u, v) = (self.g.src(e), self.g.dst(e));
        for &(i, ref op) in &self.ops {
            // Vertex-space steps run at their anchor endpoint and skip
            // when the buffer already holds that row; edge-space steps
            // run at `e` unconditionally.
            let r = match op.anchor {
                Some(Anchor::Src) => {
                    if self.cache[i] == u {
                        continue;
                    }
                    self.cache[i] = u;
                    u
                }
                Some(Anchor::Dst) => {
                    if self.cache[i] == v {
                        continue;
                    }
                    self.cache[i] = v;
                    v
                }
                None => e,
            };
            // Topological order: position `i` reads only positions < i.
            let (prev, rest) = self.bufs.split_at_mut(i);
            let buf = &mut rest[0][..];
            let row = |s: &MSrc<'a>, r: usize| -> &[f32] {
                match *s {
                    MSrc::Buf(j) => &prev[j],
                    MSrc::Base(t, at) => t.row(match at {
                        RowAt::Own => r,
                        RowAt::SrcV => u,
                        RowAt::DstV => v,
                        RowAt::Edge => e,
                    }),
                }
            };
            match op.kind {
                OpKind::Scatter(f) => {
                    let x = &op.srcs[0];
                    let y = op.srcs.last().expect("scatter has inputs");
                    match f {
                        ScatterFn::Bin(bf) => {
                            rowops::zip2_into(buf, row(x, u), row(y, v), |a, b| bf.apply(a, b));
                        }
                        _ => unreachable!("copies are aliased, ConcatUV rejected"),
                    }
                }
                OpKind::EdgeSoftmax => {
                    let (mx, dn) = op.aux.expect("streamed softmax has stashed aux");
                    rowops::softmax_from_stats(buf, row(&op.srcs[0], e), mx.row(v), dn.row(v));
                }
                OpKind::Unary(f) => {
                    rowops::map_into(buf, row(&op.srcs[0], r), |x| f.apply(x));
                }
                OpKind::UnaryBwd(f) => {
                    rowops::zip2_into(buf, row(&op.srcs[0], r), row(&op.srcs[1], r), |gv, xv| {
                        gv * f.derivative(xv)
                    });
                }
                OpKind::Binary(f) => {
                    let (da, db) = (op.dins[0], op.dins[1]);
                    let heads = da.heads;
                    let (ar, br) = (row(&op.srcs[0], r), row(&op.srcs[1], r));
                    if da.feat == db.feat {
                        rowops::zip2_into(buf, ar, br, |a, b| f.apply(a, b));
                    } else if db.feat == 1 {
                        // Per-head scalar broadcast, hoisted out of the
                        // element loop (same `f.apply(a[..], b[h])` per
                        // element as the generic tiled arm).
                        let feat = da.feat;
                        for h in 0..heads {
                            let s = br[h];
                            rowops::map_into(
                                &mut buf[h * feat..(h + 1) * feat],
                                &ar[h * feat..(h + 1) * feat],
                                |a| f.apply(a, s),
                            );
                        }
                    } else {
                        let feat = db.feat;
                        for h in 0..heads {
                            let s = ar[h];
                            rowops::map_into(
                                &mut buf[h * feat..(h + 1) * feat],
                                &br[h * feat..(h + 1) * feat],
                                |b| f.apply(s, b),
                            );
                        }
                    }
                }
                OpKind::FeatSum => {
                    let din = op.dins[0];
                    let (heads, feat) = (din.heads, din.feat);
                    let xr = row(&op.srcs[0], r);
                    for h in 0..heads {
                        buf[h] = xr[h * feat..(h + 1) * feat].iter().sum();
                    }
                }
                other => unreachable!("op {other:?} rejected by plan_streams"),
            }
        }
        match self.root {
            MSrc::Buf(j) => &self.bufs[j],
            MSrc::Base(t, at) => t.row(match at {
                RowAt::Own | RowAt::Edge => e,
                RowAt::SrcV => u,
                RowAt::DstV => v,
            }),
        }
    }
}

/// Runs one streamed `BySrc` gather: a single ascending pass over the
/// canonical edge array per worker, evaluating the elided chain at each
/// owned edge and accumulating into the owner's source rows — the exact
/// partitioning, accumulation order, and row expressions of
/// [`crate::kernels::gather`]'s `BySrc` scan, with the interior tensor
/// replaced by per-edge recomputation.
#[allow(clippy::too_many_arguments)]
fn run_streamed_gather(
    policy: &ExecPolicy,
    g: &Graph,
    ir: &IrGraph,
    reduce: ReduceFn,
    chain: &StreamChain,
    steps: &[StepPlan],
    mat: &[Option<Tensor>],
    values: &HashMap<NodeId, Tensor>,
    preludes: &[Tensor],
    aux_softmax: &HashMap<NodeId, (Tensor, Tensor)>,
    total: usize,
) -> Tensor {
    let n = g.num_vertices();
    let m = g.num_edges();
    let adj = g.out_adj();
    let src = g.src_slice();
    let mut out = Tensor::zeros(&[n, total]);
    let threads = plan_threads(policy, n, m * total);
    let run = |vs: std::ops::Range<usize>, chunk: &mut [f32]| {
        let mut ev = StreamEval::new(chain, steps, g, ir, mat, values, preludes, aux_softmax);
        let v0 = vs.start;
        for (e, &s) in src.iter().enumerate() {
            let v = s as usize;
            if !vs.contains(&v) {
                continue;
            }
            let row = ev.eval(e);
            let o = &mut chunk[(v - v0) * total..(v - v0 + 1) * total];
            match reduce {
                ReduceFn::Sum => rowops::add_assign(o, row),
                ReduceFn::Mean => rowops::axpy(o, 1.0 / adj.degree(v) as f32, row),
                ReduceFn::Max => unreachable!("streamed gathers are Sum/Mean"),
            }
        }
    };
    if threads < 2 || total == 0 {
        run(0..n, out.as_mut_slice());
    } else {
        let bounds = vertex_bounds(policy, adj.indptr(), threads);
        let chunks = split_rows(out.as_mut_slice(), total, &bounds);
        let wg = contain::WorkerGuard::new();
        std::thread::scope(|s| {
            for (w, chunk) in bounds.windows(2).zip(chunks) {
                let run = &run;
                let wg = &wg;
                s.spawn(move || wg.run(|| run(w[0]..w[1], chunk)));
            }
        });
        wg.rethrow();
    }
    out
}

/// Cuts worker boundaries over the tile sequence so every worker owns
/// roughly the same number of **edges** (each tile being a bounded edge
/// group of at most `tile_edges` edges, GNNAdvisor's neighbor-grouping
/// discipline). This is the `ExecPolicy::group_workers` alternative to
/// the tile-count split of [`chunk_bounds`]: on skewed graphs the worker
/// that owns a hub's tile gets correspondingly fewer other tiles, so the
/// per-worker edge load flattens. Returns `workers + 1` strictly
/// increasing boundaries covering every tile; the binding never changes
/// results (workers still write disjoint contiguous row chunks).
pub(crate) fn edge_balanced_bounds(
    tiles: &[usize],
    indptr: &[usize],
    threads: usize,
) -> Vec<usize> {
    let num_tiles = tiles.len().saturating_sub(1);
    let workers = threads.clamp(1, num_tiles.max(1));
    let total = if num_tiles == 0 {
        0
    } else {
        indptr[tiles[num_tiles]]
    };
    if total == 0 {
        return chunk_bounds(num_tiles, workers);
    }
    let mut bounds = vec![0usize];
    for w in 1..workers {
        let target = (total as u64 * w as u64).div_ceil(workers as u64) as usize;
        let prev = *bounds.last().expect("bounds is non-empty");
        let mut t = prev + 1;
        while t < num_tiles && indptr[tiles[t]] < target {
            t += 1;
        }
        // Leave at least one tile for each remaining worker (workers ≤
        // num_tiles makes the clamp range non-empty).
        bounds.push(t.clamp(prev + 1, num_tiles - (workers - w)));
    }
    bounds.push(num_tiles);
    bounds
}

/// Cuts destination-vertex tile boundaries so each tile covers at most
/// `tile_edges` edges (always at least one vertex per tile).
pub(crate) fn tile_bounds(indptr: &[usize], tile_edges: usize) -> Vec<usize> {
    let n = indptr.len() - 1;
    let mut bounds = vec![0];
    let mut v = 0;
    while v < n {
        let e0 = indptr[v];
        v += 1;
        while v < n && indptr[v + 1] - e0 <= tile_edges {
            v += 1;
        }
        bounds.push(v);
    }
    bounds
}

/// Read access to step operands inside one tile.
struct TileView<'a> {
    v0: usize,
    e0: usize,
    slots: &'a [Vec<f32>],
    mat: &'a [Option<Tensor>],
    values: &'a HashMap<NodeId, Tensor>,
    preludes: &'a [Tensor],
}

impl TileView<'_> {
    fn row(&self, src: Src, r: usize) -> &[f32] {
        match src {
            Src::Global(id) => self.values[&id].row(r),
            Src::Prelude(i) => self.preludes[i].row(r),
            Src::Mat(si) => self.mat[si]
                .as_ref()
                .expect("earlier-segment tensor is complete")
                .row(r),
            Src::Slot { step, cols, space } => {
                let base = match space {
                    Space::Edge => self.e0,
                    Space::Vertex => self.v0,
                    Space::Param => 0,
                };
                let off = (r - base) * cols;
                &self.slots[step][off..off + cols]
            }
        }
    }
}

/// Mutable auxiliary sinks for one step in one tile (rows are relative to
/// the worker's first vertex).
enum StepAux<'a> {
    None,
    /// Fresh softmax: worker-chunk rows of the global max/denominator.
    SoftmaxFresh {
        maxes: &'a mut [f32],
        denom: &'a mut [f32],
        chunk_v0: usize,
    },
    /// Recompute softmax from the session's stashed auxiliaries.
    SoftmaxFromAux {
        maxes: &'a Tensor,
        denom: &'a Tensor,
    },
    /// Gather(Max): worker-chunk rows of the global argmax table.
    ArgMax {
        table: &'a mut [u32],
        chunk_v0: usize,
    },
    /// Gather(Max) backward: the forward gather's complete argmax table
    /// (global rows), routing each vertex gradient to its winning edge.
    ArgMaxRead {
        table: &'a [u32],
    },
}

/// Executes one lowered kernel over the graph, tile by tile.
///
/// `evict` (arena mode) names the values whose last external reader is
/// this kernel: the interpreter removes each from `values` as soon as
/// its last reading segment completes, so the pool can recycle its
/// buffer into the launch's own materializations. Results are
/// unaffected — only already-dead inputs are freed, and the session's
/// post-kernel eviction no-ops on whatever was freed here.
///
/// # Errors
///
/// Returns [`ExecError::ValueNotLive`] when an out-of-kernel operand is
/// not in the value store (a plan inconsistency, same contract as the
/// reference path).
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub(crate) fn run_program(
    policy: &ExecPolicy,
    g: &Graph,
    ir: &IrGraph,
    program: &KernelProgram,
    values: &mut HashMap<NodeId, Tensor>,
    aux_softmax: &HashMap<NodeId, (Tensor, Tensor)>,
    aux_argmax: &HashMap<NodeId, Vec<u32>>,
    evict: Option<&[NodeId]>,
) -> Result<ProgramResult> {
    if let Some(action) = gnnopt_tensor::fault::check("fused.launch") {
        use gnnopt_tensor::fault::FaultAction;
        match action {
            FaultAction::Panic => {
                std::panic::panic_any(gnnopt_tensor::fault::injected_panic_message("fused.launch"))
            }
            _ => {
                return Err(ExecError::Injected {
                    site: "fused.launch".into(),
                })
            }
        }
    }
    let n = g.num_vertices();
    let m = g.num_edges();
    let indptr = g.in_adj().indptr();

    // Step lookup and prelude evaluation (parameter-space views are
    // O(params): computed once, shared read-only by all workers).
    let mut step_index: HashMap<NodeId, usize> = HashMap::new();
    for (si, s) in program.steps.iter().enumerate() {
        step_index.insert(s.node, si);
    }
    let mut preludes: Vec<Tensor> = Vec::new();
    let mut prelude_idx: HashMap<NodeId, usize> = HashMap::new();
    let not_live = |id: NodeId| ExecError::ValueNotLive {
        node: ir.node(id).name.clone(),
    };
    for s in &program.steps {
        if s.storage != Storage::Prelude {
            continue;
        }
        let node = ir.node(s.node);
        let input = node.inputs[0];
        let x: &Tensor = prelude_idx
            .get(&input)
            .map(|&i| &preludes[i])
            .or_else(|| values.get(&input))
            .ok_or_else(|| not_live(input))?;
        let din = ir.node(input).dim;
        let t = match &node.kind {
            // Mirrors the reference `exec_node` exactly: parameters store
            // heads as rows, so the per-head slice degenerates to heads=1.
            OpKind::SliceCols { start, end } => {
                crate::kernels::slice_cols(&ExecPolicy::serial(), x, 1, din.feat, *start, *end)
            }
            OpKind::SliceRows { start, end } => {
                let rows: Vec<usize> = (*start..*end).collect();
                x.select_rows(&rows)?
            }
            OpKind::SetHeads { .. } => x.clone(),
            other => unreachable!("non-view prelude op {other:?} survived lowering"),
        };
        prelude_idx.insert(s.node, preludes.len());
        preludes.push(t);
    }

    // Operand sources per step: same-segment members resolve to scratch
    // slots, earlier-segment members to their (complete) full tensors.
    let mut steps: Vec<StepPlan> = Vec::with_capacity(program.steps.len());
    for s in &program.steps {
        let node = ir.node(s.node);
        let mut srcs = Vec::with_capacity(node.inputs.len());
        for &i in &node.inputs {
            let src = if let Some(&pi) = prelude_idx.get(&i) {
                Src::Prelude(pi)
            } else if let Some(&si) = step_index.get(&i) {
                let inp = &program.steps[si];
                if s.exec == StepExec::Tiled && inp.segment == s.segment {
                    Src::Slot {
                        step: si,
                        cols: inp.cols,
                        space: inp.space,
                    }
                } else {
                    Src::Mat(si)
                }
            } else if values.contains_key(&i) {
                Src::Global(i)
            } else {
                return Err(not_live(i));
            };
            srcs.push(src);
        }
        steps.push(StepPlan {
            node: s.node,
            space: s.space,
            cols: s.cols,
            storage: s.storage,
            srcs,
            dins: node.inputs.iter().map(|&i| ir.node(i).dim).collect(),
        });
    }

    // Streamed full-step gathers: their interior producer chains are
    // elided from the tiled segments below and recomputed per edge
    // inside the gather's own scan (see `plan_streams`).
    let streams = plan_streams(&steps, program, ir, aux_softmax);
    if std::env::var_os("GNNOPT_PROFILE").is_some() {
        for (si, c) in &streams {
            eprintln!("  STREAM gather step {si}: chain {:?}", c.order);
        }
    }
    let elided: HashSet<usize> = streams
        .values()
        .flat_map(|c| c.order.iter().copied())
        .collect();

    // Mid-launch eviction schedule (arena mode): each dying global's
    // last reading stage — stage 0 is the prelude pass above, stage
    // 1 + ordinal each segment. Elided chain members read their operands
    // inside their gather's segment, so their reads attribute there.
    let mut evicted_bytes = 0u64;
    let mut last_stage: HashMap<NodeId, usize> = HashMap::new();
    if let Some(dying) = evict {
        for s in &program.steps {
            if s.storage == Storage::Prelude {
                for &i in &ir.node(s.node).inputs {
                    if dying.contains(&i) && values.contains_key(&i) {
                        last_stage.insert(i, 0);
                    }
                }
            }
        }
        let mut track = |si: usize, stage: usize| {
            for &src in &steps[si].srcs {
                if let Src::Global(id) = src {
                    if dying.contains(&id) {
                        last_stage.insert(id, stage);
                    }
                }
            }
        };
        for (ord, seg) in program.segments().into_iter().enumerate() {
            for si in 0..steps.len() {
                if program.steps[si].segment != seg
                    || program.steps[si].storage == Storage::Prelude
                    || elided.contains(&si)
                {
                    continue;
                }
                track(si, ord + 1);
                if let Some(chain) = streams.get(&si) {
                    for &mi in &chain.order {
                        track(mi, ord + 1);
                    }
                }
            }
        }
    }
    let release = |stage: usize, values: &mut HashMap<NodeId, Tensor>, evicted: &mut u64| {
        let Some(dying) = evict else { return };
        for &id in dying {
            if last_stage.get(&id) == Some(&stage) {
                if let Some(t) = values.remove(&id) {
                    *evicted += t.byte_size() as u64;
                }
            }
        }
    };
    // The prelude pass already ran: inputs it exhausted free before the
    // launch materializes anything.
    release(0, values, &mut evicted_bytes);

    // Full-tensor storage for materialized/interior steps. Tiled ones are
    // pre-allocated (workers fill disjoint chunks); full steps produce
    // theirs when their segment runs. Elided chain members never
    // materialize at all.
    let mut mat: Vec<Option<Tensor>> = vec![None; steps.len()];
    for (si, sp) in steps.iter().enumerate() {
        if matches!(sp.storage, Storage::Materialized | Storage::Interior)
            && program.steps[si].exec == StepExec::Tiled
            && !elided.contains(&si)
        {
            let rows = match sp.space {
                Space::Edge => m,
                Space::Vertex => n,
                Space::Param => unreachable!("param steps are never tiled"),
            };
            mat[si] = Some(Tensor::zeros(&[rows, sp.cols]));
        }
    }

    // Auxiliaries: tiled softmax / gather-max fill global tables in
    // disjoint chunks; a full BySrc gather-max returns its table whole.
    let mut fresh_softmax: Vec<(usize, Tensor, Tensor)> = Vec::new();
    let mut from_aux: HashMap<usize, (&Tensor, &Tensor)> = HashMap::new();
    let mut argmax_tables: Vec<(usize, Vec<u32>)> = Vec::new();
    for (si, sp) in steps.iter().enumerate() {
        match &ir.node(sp.node).kind {
            OpKind::EdgeSoftmax => {
                if let Some((mx, dn)) = aux_softmax.get(&sp.node) {
                    from_aux.insert(si, (mx, dn));
                } else {
                    fresh_softmax.push((
                        si,
                        Tensor::full(&[n, sp.cols], f32::NEG_INFINITY),
                        Tensor::zeros(&[n, sp.cols]),
                    ));
                }
            }
            OpKind::Gather {
                reduce: ReduceFn::Max,
                ..
            } if program.steps[si].exec == StepExec::Tiled => {
                // Pool-recycled like the session's aux store drains them.
                let mut table = pool::take_u32(n * sp.cols);
                table.resize(n * sp.cols, NO_ARGMAX);
                argmax_tables.push((si, table));
            }
            _ => {}
        }
    }

    // Tiled gather-max backward steps read the forward gather's stashed
    // argmax table; resolve them before the workers spawn so a missing
    // stash surfaces as a session error, not a worker panic.
    let mut argmax_read: HashMap<usize, &[u32]> = HashMap::new();
    for (si, sp) in steps.iter().enumerate() {
        if program.steps[si].exec != StepExec::Tiled {
            continue;
        }
        if let OpKind::GatherMaxBwd { fwd } = &ir.node(sp.node).kind {
            let table = aux_argmax.get(fwd).ok_or_else(|| ExecError::ValueNotLive {
                node: format!("argmax aux of node {fwd}"),
            })?;
            argmax_read.insert(si, table.as_slice());
        }
    }

    // Tiles and worker partition (shared by every tiled segment).
    let tiles = tile_bounds(indptr, policy.tile_edges);
    let num_tiles = tiles.len() - 1;
    let work: usize = steps
        .iter()
        .map(|s| match s.space {
            Space::Edge => m * s.cols,
            Space::Vertex => n * s.cols,
            Space::Param => 0,
        })
        .sum();
    let threads = if work < policy.parallel_threshold {
        1
    } else {
        policy.threads.clamp(1, num_tiles.max(1))
    };
    // Worker → tile boundaries: split by tile count, or — under
    // `group_workers` — by edge count, binding workers to bounded edge
    // groups so degree skew flattens (never affects results).
    let wt = if policy.group_workers {
        edge_balanced_bounds(&tiles, indptr, threads)
    } else {
        chunk_bounds(num_tiles, threads)
    };
    let wv: Vec<usize> = wt.iter().map(|&t| tiles[t]).collect();
    let we: Vec<usize> = wv.iter().map(|&v| indptr[v]).collect();
    let workers = wt.len() - 1;

    // Worker arena sizes are a pure function of the partition, so the
    // scratch high-water mark (max over segments, sum over workers) is
    // known before running.
    let mut scratch_bytes = 0u64;
    let worker_max_tile = |w: usize| -> (usize, usize) {
        let (mut tv, mut te) = (0usize, 0usize);
        for t in wt[w]..wt[w + 1] {
            tv = tv.max(tiles[t + 1] - tiles[t]);
            te = te.max(indptr[tiles[t + 1]] - indptr[tiles[t]]);
        }
        (tv, te)
    };
    let seg_live = |seg| -> Vec<usize> {
        (0..steps.len())
            .filter(|&si| {
                program.steps[si].segment == seg
                    && program.steps[si].storage != Storage::Prelude
                    && !elided.contains(&si)
            })
            .collect()
    };
    for seg in program.segments() {
        if seg_live(seg).is_empty() {
            continue;
        }
        let mut total = 0u64;
        for w in 0..workers {
            let (tv, te) = worker_max_tile(w);
            total += program.scratch_tile_bytes(seg, tv, te);
        }
        scratch_bytes = scratch_bytes.max(total);
    }

    // Execute segments in order: full steps once over the whole graph via
    // the (deterministic, thread-parallel) reference kernels; tiled
    // segments over destination ranges with per-worker scratch.
    let mut new_argmax_full: Vec<(usize, Vec<u32>)> = Vec::new();
    for (ord, seg) in program.segments().into_iter().enumerate() {
        let seg_steps: Vec<usize> = seg_live(seg);
        if seg_steps.is_empty() {
            // Every member streamed into a later gather: nothing to run.
            release(ord + 1, values, &mut evicted_bytes);
            continue;
        }
        if seg_steps
            .iter()
            .any(|&si| program.steps[si].exec == StepExec::Full)
        {
            // A full segment holds exactly one step. (The block scopes
            // the shared reborrow of `values` so the stage release below
            // can take it mutably.)
            let si = seg_steps[0];
            let t = {
                let values = &*values;
                let sp = &steps[si];
                let full = |src: Src| -> &Tensor {
                    match src {
                        Src::Global(id) => &values[&id],
                        Src::Prelude(i) => &preludes[i],
                        Src::Mat(mi) => mat[mi].as_ref().expect("earlier segment is complete"),
                        Src::Slot { .. } => unreachable!("full steps never read scratch"),
                    }
                };
                match &ir.node(sp.node).kind {
                    OpKind::Gather { reduce, group } => {
                        if let Some(chain) = streams.get(&si) {
                            // Streamed path: the input chain was elided from
                            // the tiled segments; evaluate it per edge here.
                            run_streamed_gather(
                                policy,
                                g,
                                ir,
                                *reduce,
                                chain,
                                &steps,
                                &mat,
                                values,
                                &preludes,
                                aux_softmax,
                                sp.cols,
                            )
                        } else {
                            let (t, am) = crate::kernels::gather(
                                policy,
                                g,
                                *reduce,
                                *group,
                                full(sp.srcs[0]),
                            );
                            if let Some(am) = am {
                                new_argmax_full.push((si, am));
                            }
                            t
                        }
                    }
                    // Every other full step — whole-graph backward
                    // reductions, GEMMs, parameter reductions, row
                    // views — runs through the shared reference dispatch.
                    // This is what makes lowering total: no op needs a
                    // per-kernel fallback to the node-by-node path.
                    kind => {
                        let inputs: Vec<&Tensor> = sp.srcs.iter().map(|&s| full(s)).collect();
                        let aux_in = match kind {
                            OpKind::GatherMaxBwd { fwd } => {
                                let table =
                                    aux_argmax.get(fwd).ok_or_else(|| ExecError::ValueNotLive {
                                        node: format!("argmax aux of node {fwd}"),
                                    })?;
                                crate::refexec::AuxIn::Argmax(table)
                            }
                            _ => crate::refexec::AuxIn::None,
                        };
                        let (t, aux_out) = crate::refexec::exec_op(
                            policy,
                            g,
                            ir,
                            ir.node(sp.node),
                            &inputs,
                            aux_in,
                        )?;
                        match aux_out {
                            crate::refexec::AuxOut::Argmax(a) => new_argmax_full.push((si, a)),
                            crate::refexec::AuxOut::None => {}
                            crate::refexec::AuxOut::Softmax(..) => {
                                unreachable!("EdgeSoftmax is never a full step")
                            }
                        }
                        t
                    }
                }
            };
            mat[si] = Some(t);
            release(ord + 1, values, &mut evicted_bytes);
            continue;
        }

        // Tiled segment: take the segment's full tensors out for chunked
        // writing (same-segment reads go through scratch, never `mat`).
        // The block scopes the workers' shared reborrow of `values`.
        {
            let values = &*values;
            struct SegOut {
                si: usize,
                tensor: Tensor,
            }
            let mut seg_out: Vec<SegOut> = Vec::new();
            for &si in &seg_steps {
                if matches!(steps[si].storage, Storage::Materialized | Storage::Interior) {
                    seg_out.push(SegOut {
                        si,
                        tensor: mat[si].take().expect("tiled output pre-allocated"),
                    });
                }
            }

            struct WorkerSinks<'w> {
                out: Vec<(usize, &'w mut [f32])>,
                sm: Vec<(usize, &'w mut [f32], &'w mut [f32])>,
                am: Vec<(usize, &'w mut [u32])>,
            }
            let mut sinks: Vec<WorkerSinks<'_>> = (0..workers)
                .map(|_| WorkerSinks {
                    out: Vec::new(),
                    sm: Vec::new(),
                    am: Vec::new(),
                })
                .collect();
            for so in &mut seg_out {
                let sp = &steps[so.si];
                let bounds = if sp.space == Space::Edge { &we } else { &wv };
                for (w, chunk) in split_rows(so.tensor.as_mut_slice(), sp.cols, bounds)
                    .into_iter()
                    .enumerate()
                {
                    sinks[w].out.push((so.si, chunk));
                }
            }
            for (si, mx, dn) in &mut fresh_softmax {
                if !seg_steps.contains(si) {
                    continue;
                }
                let cols = steps[*si].cols;
                let mx_chunks = split_rows(mx.as_mut_slice(), cols, &wv);
                let dn_chunks = split_rows(dn.as_mut_slice(), cols, &wv);
                for (w, (mc, dc)) in mx_chunks.into_iter().zip(dn_chunks).enumerate() {
                    sinks[w].sm.push((*si, mc, dc));
                }
            }
            for (si, table) in &mut argmax_tables {
                if !seg_steps.contains(si) {
                    continue;
                }
                let cols = steps[*si].cols;
                for (w, chunk) in split_rows(table, cols, &wv).into_iter().enumerate() {
                    sinks[w].am.push((*si, chunk));
                }
            }

            // Run the segment. Each worker walks its tiles sequentially,
            // reusing one arena.
            let mat_ref = &mat;
            let run_worker = |tile_range: std::ops::Range<usize>, mut sinks: WorkerSinks<'_>| {
                let (wv0, we0) = (tiles[tile_range.start], indptr[tiles[tile_range.start]]);
                let (mut max_tv, mut max_te) = (0usize, 0usize);
                for t in tile_range.clone() {
                    max_tv = max_tv.max(tiles[t + 1] - tiles[t]);
                    max_te = max_te.max(indptr[tiles[t + 1]] - indptr[tiles[t]]);
                }
                // Slots come off the pool when it is active on this thread
                // (serial segments run on the session thread); workers see
                // an inactive pool and allocate as before.
                let zeroed = |len: usize| {
                    let mut v = pool::take_f32(len);
                    v.resize(len, 0.0);
                    v
                };
                let mut slots: Vec<Vec<f32>> = (0..steps.len())
                    .map(|si| {
                        if !seg_steps.contains(&si) {
                            return Vec::new();
                        }
                        match steps[si].space {
                            Space::Edge => zeroed(max_te * steps[si].cols),
                            Space::Vertex => zeroed(max_tv * steps[si].cols),
                            Space::Param => Vec::new(),
                        }
                    })
                    .collect();
                // Heavy-row chunk partial, shared across steps/tiles.
                let mut scratch: Vec<f32> = Vec::new();
                for t in tile_range {
                    let (v0, v1) = (tiles[t], tiles[t + 1]);
                    let (e0, e1) = (indptr[v0], indptr[v1]);
                    for &si in &seg_steps {
                        let sp = &steps[si];
                        let mut buf = std::mem::take(&mut slots[si]);
                        {
                            let view = TileView {
                                v0,
                                e0,
                                slots: &slots,
                                mat: mat_ref,
                                values,
                                preludes: &preludes,
                            };
                            let aux = match &ir.node(sp.node).kind {
                                OpKind::EdgeSoftmax => {
                                    if let Some(&(mx, dn)) = from_aux.get(&si) {
                                        StepAux::SoftmaxFromAux {
                                            maxes: mx,
                                            denom: dn,
                                        }
                                    } else {
                                        let (_, mc, dc) = sinks
                                            .sm
                                            .iter_mut()
                                            .find(|(i, _, _)| *i == si)
                                            .expect("fresh softmax has an aux sink");
                                        StepAux::SoftmaxFresh {
                                            maxes: mc,
                                            denom: dc,
                                            chunk_v0: wv0,
                                        }
                                    }
                                }
                                OpKind::Gather {
                                    reduce: ReduceFn::Max,
                                    ..
                                } => {
                                    let (_, table) = sinks
                                        .am
                                        .iter_mut()
                                        .find(|(i, _)| *i == si)
                                        .expect("gather-max has an argmax sink");
                                    StepAux::ArgMax {
                                        table,
                                        chunk_v0: wv0,
                                    }
                                }
                                OpKind::GatherMaxBwd { .. } => StepAux::ArgMaxRead {
                                    table: argmax_read[&si],
                                },
                                _ => StepAux::None,
                            };
                            exec_step(
                                ir.node(sp.node),
                                sp,
                                g,
                                &view,
                                (v0, v1, e0, e1),
                                &mut buf,
                                aux,
                                policy.heavy_row_degree,
                                &mut scratch,
                            );
                        }
                        if matches!(sp.storage, Storage::Materialized | Storage::Interior) {
                            let (rows, r0, wbase) = match sp.space {
                                Space::Edge => (e1 - e0, e0, we0),
                                _ => (v1 - v0, v0, wv0),
                            };
                            let (_, chunk) = sinks
                                .out
                                .iter_mut()
                                .find(|(i, _)| *i == si)
                                .expect("materialized step has an output sink");
                            let dst = (r0 - wbase) * sp.cols;
                            chunk[dst..dst + rows * sp.cols]
                                .copy_from_slice(&buf[..rows * sp.cols]);
                        }
                        slots[si] = buf;
                    }
                }
                // Recycle the per-worker buffers (no-op off the pool thread).
                for s in slots {
                    pool::put_f32(s);
                }
                pool::put_f32(scratch);
            };

            if workers < 2 {
                if let Some(s) = sinks.pop() {
                    run_worker(0..num_tiles, s);
                }
            } else {
                let wg = contain::WorkerGuard::new();
                std::thread::scope(|scope| {
                    for (w, s) in sinks.into_iter().enumerate() {
                        let run_worker = &run_worker;
                        let wg = &wg;
                        let range = wt[w]..wt[w + 1];
                        scope.spawn(move || wg.run(|| run_worker(range, s)));
                    }
                });
                wg.rethrow();
            }

            // Restore the segment's tensors for later segments to read.
            for so in seg_out {
                mat[so.si] = Some(so.tensor);
            }
        }
        release(ord + 1, values, &mut evicted_bytes);
    }

    let mut new_aux_argmax: Vec<(NodeId, Vec<u32>)> = argmax_tables
        .into_iter()
        .map(|(si, a)| (steps[si].node, a))
        .collect();
    new_aux_argmax.extend(
        new_argmax_full
            .into_iter()
            .map(|(si, a)| (steps[si].node, a)),
    );
    Ok(ProgramResult {
        outputs: mat
            .into_iter()
            .enumerate()
            .filter_map(|(si, t)| t.map(|t| (steps[si].node, t)))
            .collect(),
        new_aux_softmax: fresh_softmax
            .into_iter()
            .map(|(si, mx, dn)| (steps[si].node, (mx, dn)))
            .collect(),
        scratch_bytes,
        new_aux_argmax,
        evicted_bytes,
    })
}

/// Executes one step over one tile into `buf` (tile-relative rows).
///
/// Every arm reproduces the corresponding kernel in [`crate::kernels`]
/// expression-for-expression and in the same iteration order, which is
/// what makes fused execution bit-identical to the reference path.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn exec_step(
    node: &Node,
    sp: &StepPlan,
    g: &Graph,
    tv: &TileView<'_>,
    (v0, v1, e0, e1): (usize, usize, usize, usize),
    buf: &mut [f32],
    aux: StepAux<'_>,
    heavy: usize,
    scratch: &mut Vec<f32>,
) {
    let total = sp.cols;
    let adj = g.in_adj();
    match &node.kind {
        OpKind::Scatter(f) => {
            let x = sp.srcs[0];
            let y = *sp.srcs.last().expect("scatter has inputs");
            match f {
                ScatterFn::CopyU => {
                    for e in e0..e1 {
                        buf[(e - e0) * total..(e - e0 + 1) * total]
                            .copy_from_slice(tv.row(x, g.src(e)));
                    }
                }
                ScatterFn::CopyV => {
                    for e in e0..e1 {
                        buf[(e - e0) * total..(e - e0 + 1) * total]
                            .copy_from_slice(tv.row(y, g.dst(e)));
                    }
                }
                ScatterFn::Bin(bf) => {
                    for e in e0..e1 {
                        let (xu, yv) = (tv.row(x, g.src(e)), tv.row(y, g.dst(e)));
                        let o = &mut buf[(e - e0) * total..(e - e0 + 1) * total];
                        rowops::zip2_into(o, xu, yv, |a, b| bf.apply(a, b));
                    }
                }
                ScatterFn::ConcatUV => {
                    let heads = node.dim.heads;
                    for e in e0..e1 {
                        let (xu, yv) = (tv.row(x, g.src(e)), tv.row(y, g.dst(e)));
                        let (fx, fy) = (xu.len() / heads, yv.len() / heads);
                        let o = &mut buf[(e - e0) * total..(e - e0 + 1) * total];
                        for h in 0..heads {
                            let base = h * (fx + fy);
                            o[base..base + fx].copy_from_slice(&xu[h * fx..(h + 1) * fx]);
                            o[base + fx..base + fx + fy].copy_from_slice(&yv[h * fy..(h + 1) * fy]);
                        }
                    }
                }
            }
        }

        OpKind::Gather { reduce, .. } => {
            let x = sp.srcs[0];
            match reduce {
                // Shared with the reference kernels so the heavy-row
                // chunk association is identical on both paths.
                ReduceFn::Sum => {
                    for v in v0..v1 {
                        let o = &mut buf[(v - v0) * total..(v - v0 + 1) * total];
                        o.fill(0.0);
                        reduce_row_sum(o, adj.edge_ids(v), |e| tv.row(x, e), heavy, scratch);
                    }
                }
                ReduceFn::Mean => {
                    for v in v0..v1 {
                        let o = &mut buf[(v - v0) * total..(v - v0 + 1) * total];
                        o.fill(0.0);
                        let deg = adj.degree(v);
                        if deg == 0 {
                            continue;
                        }
                        let inv = 1.0 / deg as f32;
                        reduce_row_mean(o, adj.edge_ids(v), inv, |e| tv.row(x, e), heavy, scratch);
                    }
                }
                ReduceFn::Max => {
                    let StepAux::ArgMax { table, chunk_v0 } = aux else {
                        unreachable!("gather-max executes with an argmax sink")
                    };
                    for v in v0..v1 {
                        let o = &mut buf[(v - v0) * total..(v - v0 + 1) * total];
                        o.fill(0.0);
                        let ar = &mut table[(v - chunk_v0) * total..(v - chunk_v0 + 1) * total];
                        ar.fill(NO_ARGMAX);
                        let mut first = true;
                        for &e in adj.edge_ids(v) {
                            let xr = tv.row(x, e as usize);
                            for c in 0..total {
                                if first || xr[c] > o[c] {
                                    o[c] = xr[c];
                                    ar[c] = e;
                                }
                            }
                            first = false;
                        }
                    }
                }
            }
        }

        OpKind::EdgeSoftmax => {
            let x = sp.srcs[0];
            match aux {
                StepAux::SoftmaxFresh {
                    maxes,
                    denom,
                    chunk_v0,
                } => {
                    for v in v0..v1 {
                        let ids = adj.edge_ids(v);
                        if ids.is_empty() {
                            continue;
                        }
                        let mr = &mut maxes[(v - chunk_v0) * total..(v - chunk_v0 + 1) * total];
                        for &e in ids {
                            rowops::max_assign(mr, tv.row(x, e as usize));
                        }
                        let dr = &mut denom[(v - chunk_v0) * total..(v - chunk_v0 + 1) * total];
                        for &e in ids {
                            rowops::exp_sub_accum(dr, tv.row(x, e as usize), mr);
                        }
                        for &e in ids {
                            let yr =
                                &mut buf[(e as usize - e0) * total..(e as usize - e0 + 1) * total];
                            rowops::softmax_from_stats(yr, tv.row(x, e as usize), mr, dr);
                        }
                    }
                }
                StepAux::SoftmaxFromAux { maxes, denom } => {
                    for e in e0..e1 {
                        let v = g.dst(e);
                        let yr = &mut buf[(e - e0) * total..(e - e0 + 1) * total];
                        rowops::softmax_from_stats(yr, tv.row(x, e), maxes.row(v), denom.row(v));
                    }
                }
                _ => unreachable!("softmax executes with a softmax aux"),
            }
        }

        OpKind::EdgeSoftmaxBwd => {
            let (gr_src, y_src) = (sp.srcs[0], sp.srcs[1]);
            for v in v0..v1 {
                let ids = adj.edge_ids(v);
                let mut s = vec![0.0f32; total];
                for &e in ids {
                    rowops::mul_add_accum(
                        &mut s,
                        tv.row(gr_src, e as usize),
                        tv.row(y_src, e as usize),
                    );
                }
                for &e in ids {
                    let or = &mut buf[(e as usize - e0) * total..(e as usize - e0 + 1) * total];
                    rowops::softmax_bwd_row(
                        or,
                        tv.row(gr_src, e as usize),
                        tv.row(y_src, e as usize),
                        &s,
                    );
                }
            }
        }

        OpKind::GatherMeanBwd { .. } => {
            let gr_src = sp.srcs[0];
            for e in e0..e1 {
                let v = g.dst(e);
                let inv = 1.0 / adj.degree(v) as f32;
                let o = &mut buf[(e - e0) * total..(e - e0 + 1) * total];
                rowops::scale_into(o, inv, tv.row(gr_src, v));
            }
        }

        // Tiled only when the forward gather grouped ByDst (the tile owns
        // its destination groups whole); same expressions as
        // `kernels::gather_max_bwd`, with an explicit zero write because
        // scratch buffers are reused across tiles, not pre-zeroed.
        OpKind::GatherMaxBwd { .. } => {
            let gr_src = sp.srcs[0];
            let StepAux::ArgMaxRead { table } = aux else {
                unreachable!("gather-max backward executes with its forward argmax table")
            };
            for e in e0..e1 {
                let v = g.dst(e);
                let ar = &table[v * total..(v + 1) * total];
                let grv = tv.row(gr_src, v);
                let o = &mut buf[(e - e0) * total..(e - e0 + 1) * total];
                for c in 0..total {
                    o[c] = if ar[c] == e as u32 { grv[c] } else { 0.0 };
                }
            }
        }

        OpKind::Unary(f) => {
            let x = sp.srcs[0];
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let o = &mut buf[i * total..(i + 1) * total];
                rowops::map_into(o, tv.row(x, r), |v| f.apply(v));
            });
        }
        OpKind::UnaryBwd(f) => {
            let (gr_src, x_src) = (sp.srcs[0], sp.srcs[1]);
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let o = &mut buf[i * total..(i + 1) * total];
                rowops::zip2_into(o, tv.row(gr_src, r), tv.row(x_src, r), |gv, xv| {
                    gv * f.derivative(xv)
                });
            });
        }

        OpKind::Binary(f) => {
            let (a_src, b_src) = (sp.srcs[0], sp.srcs[1]);
            let (da, db) = (node_input_dim(sp, 0), node_input_dim(sp, 1));
            let heads = da.heads;
            if da.feat == db.feat {
                for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                    let o = &mut buf[i * total..(i + 1) * total];
                    rowops::zip2_into(o, tv.row(a_src, r), tv.row(b_src, r), |av, bv| {
                        f.apply(av, bv)
                    });
                });
            } else {
                let feat = da.feat.max(db.feat);
                for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                    let (ar, br) = (tv.row(a_src, r), tv.row(b_src, r));
                    let or = &mut buf[i * total..(i + 1) * total];
                    for h in 0..heads {
                        for c in 0..feat {
                            let av = if da.feat == 1 {
                                ar[h]
                            } else {
                                ar[h * feat + c]
                            };
                            let bv = if db.feat == 1 {
                                br[h]
                            } else {
                                br[h * feat + c]
                            };
                            or[h * feat + c] = f.apply(av, bv);
                        }
                    }
                });
            }
        }

        OpKind::GaussianWeight => {
            let (p_src, mu_src, sg_src) = (sp.srcs[0], sp.srcs[1], sp.srcs[2]);
            let k = total;
            for e in e0..e1 {
                let pr = tv.row(p_src, e);
                let r = pr.len();
                let or = &mut buf[(e - e0) * k..(e - e0 + 1) * k];
                for (ki, ov) in or.iter_mut().enumerate().take(k) {
                    let (mr, sr) = (tv.row(mu_src, ki), tv.row(sg_src, ki));
                    let mut acc = 0.0;
                    for j in 0..r {
                        let d = (pr[j] - mr[j]) * sr[j];
                        acc += d * d;
                    }
                    *ov = (-0.5 * acc).exp();
                }
            }
        }

        OpKind::SliceCols { start, end } => {
            let x = sp.srcs[0];
            let din = node_input_dim(sp, 0);
            let (heads, feat) = (din.heads, din.feat);
            let w = end - start;
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let xr = tv.row(x, r);
                let or = &mut buf[i * total..(i + 1) * total];
                for h in 0..heads {
                    or[h * w..(h + 1) * w].copy_from_slice(&xr[h * feat + start..h * feat + end]);
                }
            });
        }
        OpKind::EmbedCols {
            start,
            end,
            total: tf,
        } => {
            let x = sp.srcs[0];
            let heads = node.dim.heads;
            let w = end - start;
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let gr = tv.row(x, r);
                let or = &mut buf[i * total..(i + 1) * total];
                or.fill(0.0);
                for h in 0..heads {
                    or[h * tf + start..h * tf + end].copy_from_slice(&gr[h * w..(h + 1) * w]);
                }
            });
        }

        OpKind::SetHeads { .. } => {
            let x = sp.srcs[0];
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                buf[i * total..(i + 1) * total].copy_from_slice(tv.row(x, r));
            });
        }
        OpKind::HeadReduce(f) => {
            let x = sp.srcs[0];
            let din = node_input_dim(sp, 0);
            let (heads, feat) = (din.heads, din.feat);
            let scale = if *f == ReduceFn::Mean {
                1.0 / heads as f32
            } else {
                1.0
            };
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let xr = tv.row(x, r);
                let or = &mut buf[i * feat..(i + 1) * feat];
                or.fill(0.0);
                for h in 0..heads {
                    for c in 0..feat {
                        or[c] += xr[h * feat + c] * scale;
                    }
                }
            });
        }
        OpKind::HeadBroadcast { heads } => {
            let x = sp.srcs[0];
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let xr = tv.row(x, r);
                let feat = xr.len();
                let or = &mut buf[i * total..(i + 1) * total];
                for h in 0..*heads {
                    or[h * feat..(h + 1) * feat].copy_from_slice(xr);
                }
            });
        }
        OpKind::FeatSum => {
            let x = sp.srcs[0];
            let din = node_input_dim(sp, 0);
            let (heads, feat) = (din.heads, din.feat);
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let xr = tv.row(x, r);
                let or = &mut buf[i * heads..(i + 1) * heads];
                for h in 0..heads {
                    or[h] = xr[h * feat..(h + 1) * feat].iter().sum();
                }
            });
        }
        OpKind::FeatBroadcast { feat } => {
            let x = sp.srcs[0];
            let heads = node.dim.heads;
            for_rows(sp.space, (v0, v1, e0, e1), |r, i| {
                let xr = tv.row(x, r);
                let or = &mut buf[i * total..(i + 1) * total];
                for h in 0..heads {
                    for c in 0..*feat {
                        or[h * feat + c] = xr[h];
                    }
                }
            });
        }

        other => unreachable!("op {other:?} survived lowering but cannot tile"),
    }
}

/// Iterates the tile's rows of a step's own space: `(global row, tile-local
/// index)`.
fn for_rows(
    space: Space,
    (v0, v1, e0, e1): (usize, usize, usize, usize),
    mut body: impl FnMut(usize, usize),
) {
    let range = match space {
        Space::Edge => e0..e1,
        Space::Vertex => v0..v1,
        Space::Param => 0..0,
    };
    let base = range.start;
    for r in range {
        body(r, r - base);
    }
}

/// Input dim lookup stored on the step plan at build time.
fn node_input_dim(sp: &StepPlan, idx: usize) -> Dim {
    sp.dins[idx]
}

#[cfg(test)]
mod tests {
    use super::{edge_balanced_bounds, tile_bounds};

    #[test]
    fn tile_bounds_respect_edge_budget_and_cover_all_vertices() {
        // indptr of 6 vertices with degrees [2, 0, 3, 1, 0, 4].
        let indptr = [0usize, 2, 2, 5, 6, 6, 10];
        for budget in [0usize, 1, 2, 3, 5, 10, 1000] {
            let b = tile_bounds(&indptr, budget);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), 6, "tiles must cover every vertex");
            assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
            for w in b.windows(2) {
                let edges = indptr[w[1]] - indptr[w[0]];
                // A tile may exceed the budget only when a single vertex
                // does (groups never split).
                assert!(
                    edges <= budget || w[1] - w[0] == 1,
                    "budget {budget}: tile {w:?} has {edges} edges"
                );
            }
        }
    }

    #[test]
    fn tile_bounds_handle_empty_and_edgeless_graphs() {
        assert_eq!(tile_bounds(&[0], 8), vec![0], "no vertices → no tiles");
        // 3 vertices, 0 edges: one tile covering all of them.
        assert_eq!(tile_bounds(&[0, 0, 0, 0], 8), vec![0, 3]);
    }

    #[test]
    fn tile_bounds_isolate_a_vertex_over_budget() {
        // Vertex 1 has 7 in-edges, more than the budget of 4: it still
        // gets one intact tile.
        let indptr = [0usize, 1, 8, 9];
        let b = tile_bounds(&indptr, 4);
        assert_eq!(b, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edge_balanced_bounds_flatten_a_hub() {
        // 8 single-vertex tiles; vertex 0 holds 70 of the 77 edges. A
        // tile-count split over 2 workers gives worker 0 the hub *and*
        // three more tiles; the edge-balanced split hands everything but
        // the hub to worker 1.
        let indptr = [0usize, 70, 71, 72, 73, 74, 75, 76, 77];
        let tiles: Vec<usize> = (0..=8).collect();
        let b = edge_balanced_bounds(&tiles, &indptr, 2);
        assert_eq!(b, vec![0, 1, 8]);
        // Per-worker edge loads are within one tile of balance for any
        // worker count, and the bounds always cover every tile strictly
        // monotonically.
        for threads in 1..=8 {
            let b = edge_balanced_bounds(&tiles, &indptr, threads);
            assert_eq!(*b.first().unwrap(), 0);
            assert_eq!(*b.last().unwrap(), 8);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        }
    }

    #[test]
    fn edge_balanced_bounds_degenerate_inputs() {
        // No tiles at all.
        assert_eq!(edge_balanced_bounds(&[0], &[0], 4), vec![0]);
        // Tiles but zero edges: falls back to the tile-count split.
        let tiles = [0usize, 1, 2, 3];
        let b = edge_balanced_bounds(&tiles, &[0, 0, 0, 0], 2);
        assert_eq!(*b.first().unwrap(), 0);
        assert_eq!(*b.last().unwrap(), 3);
        // More workers than tiles clamps to one tile per worker.
        let indptr = [0usize, 2, 4];
        let b = edge_balanced_bounds(&[0, 1, 2], &indptr, 16);
        assert_eq!(b, vec![0, 1, 2]);
    }
}

//! The reference op dispatch: one IR node → one full tensor.
//!
//! This is the single place that maps an [`OpKind`] onto the kernels in
//! [`crate::kernels`]. Both execution paths consume it:
//!
//! * the node-by-node reference path ([`crate::session`]) calls it for
//!   every node of an unfused kernel, and
//! * the fused interpreter ([`crate::fused`]) calls it for every **full
//!   step** of a lowered [`gnnopt_core::KernelProgram`] — whole-graph
//!   reductions, GEMMs, parameter reductions — so lowering totality never
//!   needs a per-kernel fallback: any op the IR expresses either tiles or
//!   lands here.
//!
//! Auxiliary tables (softmax max/denominator stashes, gather-max argmax
//! tables) flow through [`AuxIn`]/[`AuxOut`] instead of session state, so
//! the dispatch itself stays a pure function of its operands.

use crate::kernels;
use crate::{ExecError, Result};
use gnnopt_core::{ExecPolicy, IrGraph, Node, OpKind, ReduceFn, Space};
use gnnopt_graph::Graph;
use gnnopt_tensor::Tensor;

/// Auxiliary state an op consumes (borrowed from the caller's stores).
pub(crate) enum AuxIn<'a> {
    /// No auxiliary input.
    None,
    /// Stashed `(max, denominator)` of a forward [`OpKind::EdgeSoftmax`]:
    /// the op recomputes from the stash instead of re-reducing.
    Softmax(&'a Tensor, &'a Tensor),
    /// The argmax table of the forward `Gather(Max)` a
    /// [`OpKind::GatherMaxBwd`] inverts.
    Argmax(&'a [u32]),
}

/// Auxiliary state an op produces (owned, for the caller's stores).
pub(crate) enum AuxOut {
    /// No auxiliary output.
    None,
    /// Fresh `(max, denominator)` from an [`OpKind::EdgeSoftmax`] that ran
    /// without a stash.
    Softmax(Tensor, Tensor),
    /// Fresh argmax table from a `Gather(Max)`.
    Argmax(Vec<u32>),
}

/// Executes one op over full tensors with the reference kernels.
///
/// `inputs` are the node's operands in IR input order.
///
/// Hosts the `refexec` failpoint (`GNNOPT_FAILPOINTS`): `panic` unwinds
/// with an injected payload (contained at kernel dispatch), `nan` runs
/// the op then stamps `f32::NAN` on the first output element (for guard
/// tests), and every other action returns [`ExecError::Injected`].
///
/// # Errors
///
/// Returns [`ExecError::ValueNotLive`] for leaves (they are bound, never
/// executed) and for a [`OpKind::GatherMaxBwd`] called without its
/// forward argmax table; tensor-shape violations surface as
/// [`ExecError::Tensor`].
pub(crate) fn exec_op(
    pol: &ExecPolicy,
    g: &Graph,
    ir: &IrGraph,
    node: &Node,
    inputs: &[&Tensor],
    aux: AuxIn<'_>,
) -> Result<(Tensor, AuxOut)> {
    use gnnopt_tensor::fault::{self, FaultAction};
    match fault::check("refexec") {
        None => exec_op_inner(pol, g, ir, node, inputs, aux),
        Some(FaultAction::Panic) => std::panic::panic_any(fault::injected_panic_message("refexec")),
        Some(FaultAction::Nan) => {
            let (mut t, aux_out) = exec_op_inner(pol, g, ir, node, inputs, aux)?;
            if let Some(v) = t.as_mut_slice().first_mut() {
                *v = f32::NAN;
            }
            Ok((t, aux_out))
        }
        Some(_) => Err(ExecError::Injected {
            site: "refexec".into(),
        }),
    }
}

#[allow(clippy::too_many_lines)]
fn exec_op_inner(
    pol: &ExecPolicy,
    g: &Graph,
    ir: &IrGraph,
    node: &Node,
    inputs: &[&Tensor],
    aux: AuxIn<'_>,
) -> Result<(Tensor, AuxOut)> {
    let din = |i: usize| ir.node(node.inputs[i]).dim;
    let out = match &node.kind {
        OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed => {
            return Err(ExecError::ValueNotLive {
                node: node.name.clone(),
            })
        }

        OpKind::Scatter(f) => {
            let x = inputs[0];
            let y = *inputs.last().expect("scatter has inputs");
            kernels::scatter(pol, g, *f, x, y, node.dim)
        }

        OpKind::Gather { reduce, group } => {
            let (t, argmax) = kernels::gather(pol, g, *reduce, *group, inputs[0]);
            let aux = argmax.map_or(AuxOut::None, AuxOut::Argmax);
            return Ok((t, aux));
        }

        OpKind::EdgeSoftmax => {
            if let AuxIn::Softmax(m, d) = aux {
                // Recompute path: O(1) per edge from stashed stats.
                kernels::edge_softmax_from_aux(pol, g, inputs[0], m, d)
            } else {
                let (y, m, d) = kernels::edge_softmax(pol, g, inputs[0]);
                return Ok((y, AuxOut::Softmax(m, d)));
            }
        }

        // GEMMs run under the caller's resolved policy: its engine choice
        // *and* its worker cap (a session pinned serial keeps its
        // weight-gradient GEMMs serial, whatever GNNOPT_THREADS or the
        // hardware says).
        OpKind::Linear => inputs[0].matmul_with_threads(inputs[1], pol.gemm, pol.threads)?,
        OpKind::LinearBwdInput => {
            inputs[0].matmul_nt_with_threads(inputs[1], pol.gemm, pol.threads)?
        }
        OpKind::LinearBwdWeight => {
            inputs[0].matmul_tn_with_threads(inputs[1], pol.gemm, pol.threads)?
        }

        OpKind::Unary(f) => kernels::unary(pol, *f, inputs[0]),
        OpKind::UnaryBwd(f) => kernels::unary_bwd(pol, *f, inputs[0], inputs[1]),

        OpKind::Binary(f) => {
            kernels::binary_broadcast(pol, *f, inputs[0], din(0), inputs[1], din(1))
        }

        OpKind::HeadDot => kernels::head_dot(pol, inputs[0], inputs[1], din(0).heads, din(0).feat),
        OpKind::HeadDotBwdInput => {
            kernels::head_dot_bwd_input(pol, inputs[0], inputs[1], node.dim.heads, node.dim.feat)
        }
        OpKind::HeadDotBwdParam => {
            kernels::head_dot_bwd_param(pol, inputs[0], inputs[1], node.dim.heads, node.dim.feat)
        }

        OpKind::GaussianWeight => kernels::gaussian_weight(pol, inputs[0], inputs[1], inputs[2]),
        OpKind::GaussianBwdMu => {
            kernels::gaussian_bwd_mu(pol, inputs[0], inputs[1], inputs[2], inputs[3], inputs[4])
        }
        OpKind::GaussianBwdSigma => {
            kernels::gaussian_bwd_sigma(pol, inputs[0], inputs[1], inputs[2], inputs[3], inputs[4])
        }

        OpKind::GatherMaxBwd { fwd } => {
            let AuxIn::Argmax(argmax) = aux else {
                return Err(ExecError::ValueNotLive {
                    node: format!("argmax aux of node {fwd}"),
                });
            };
            let group = gnnopt_core::view::gather_max_bwd_group(ir, *fwd);
            kernels::gather_max_bwd(pol, g, group, inputs[0], argmax)
        }
        OpKind::GatherMeanBwd { group } => kernels::gather_mean_bwd(pol, g, *group, inputs[0]),
        OpKind::EdgeSoftmaxBwd => kernels::edge_softmax_bwd(pol, g, inputs[0], inputs[1]),

        OpKind::SliceCols { start, end } => {
            // Parameters store heads as rows ([heads, feat]), so the
            // per-head slice degenerates to a per-row column slice.
            if ir.node(node.inputs[0]).space == Space::Param {
                kernels::slice_cols(pol, inputs[0], 1, din(0).feat, *start, *end)
            } else {
                kernels::slice_cols(pol, inputs[0], din(0).heads, din(0).feat, *start, *end)
            }
        }
        OpKind::EmbedCols { start, end, total } => {
            if node.space == Space::Param {
                kernels::embed_cols(pol, inputs[0], 1, *total, *start, *end)
            } else {
                kernels::embed_cols(pol, inputs[0], node.dim.heads, *total, *start, *end)
            }
        }
        OpKind::SliceRows { start, end } => {
            let rows: Vec<usize> = (*start..*end).collect();
            inputs[0].select_rows(&rows)?
        }
        OpKind::EmbedRows { start, end, total } => {
            let gr = inputs[0];
            let mut out = Tensor::zeros(&[*total, node.dim.feat]);
            for (i, r) in (*start..*end).enumerate() {
                out.row_mut(r).copy_from_slice(gr.row(i));
            }
            out
        }

        OpKind::SetHeads { .. } => inputs[0].clone(),
        OpKind::HeadReduce(f) => kernels::head_reduce(
            pol,
            inputs[0],
            din(0).heads,
            din(0).feat,
            *f == ReduceFn::Mean,
        ),
        OpKind::HeadBroadcast { heads } => kernels::head_broadcast(pol, inputs[0], *heads),
        OpKind::FeatSum => kernels::feat_sum(pol, inputs[0], din(0).heads, din(0).feat),
        OpKind::FeatBroadcast { feat } => {
            kernels::feat_broadcast(pol, inputs[0], node.dim.heads, *feat)
        }
    };
    Ok((out, AuxOut::None))
}

//! The execution session: drives a compiled plan over real data.
//!
//! # Constructing sessions
//!
//! [`SessionBuilder`] (via [`Session::builder`]) is the one documented
//! construction path. It makes every choice the old constructors took
//! implicitly an explicit knob:
//!
//! ```ignore
//! let mut sess = Session::builder(&plan, &graph)
//!     .policy(policy)            // default: the plan's own ExecPolicy
//!     .fused(true)               // default: policy.fused, or the env
//!     .env(EnvOverrides::Ignore) // default: Loud
//!     .build()?;
//! ```
//!
//! The `GNNOPT_*` environment overrides (`THREADS`, `FUSED`, `REORDER`,
//! `GEMM`) are consulted according to the builder's [`EnvOverrides`]
//! mode: `Loud` errors on an invalid value, `Ignore` skips invalid
//! values silently, `Off` consults none of them.
//!
//! ## Migrating from the old constructors
//!
//! The pre-builder constructors are **deprecated** thin shims that
//! delegate to the builder; new code must call the builder directly:
//!
//! | old call | builder equivalent |
//! |---|---|
//! | `Session::new(p, g)` | `Session::builder(p, g).build()` |
//! | `Session::with_policy(p, g, pol)` | `.policy(pol).fused(env or plan).env(Off).build()` |
//! | `Session::with_policy_fused(p, g, pol, f)` | `.policy(pol).fused(f).env(Off).build()` |
//!
//! (`with_policy` historically consulted *only* the `GNNOPT_FUSED`
//! override, leniently — its shim reproduces exactly that, nothing
//! more.) The free-floating `fused: bool` of the old API now lives in
//! [`ExecPolicy::fused`]; `CompileOptions::fused_exec` is gone.

use crate::{contain, fused, kernels, refexec};
use crate::{ExecError, Result};
use gnnopt_core::fault;
use gnnopt_core::memplan::{self, MemoryPlan};
use gnnopt_core::{ExecPolicy, ExecutionPlan, Node, NodeId, OpKind, Phase, ReorderPolicy, Space};
use gnnopt_graph::{EdgeList, Graph};
use gnnopt_reorder::{locality, strategies, Permutation};
use gnnopt_tensor::{pool, Tensor};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Named tensors bound to the IR's leaves (inputs and parameters).
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    values: HashMap<String, Tensor>,
}

impl Bindings {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to `value`, returning `self` for chaining.
    pub fn with(mut self, name: &str, value: Tensor) -> Self {
        self.values.insert(name.to_owned(), value);
        self
    }

    /// Binds `name` to `value`.
    pub fn insert(&mut self, name: &str, value: Tensor) {
        self.values.insert(name.to_owned(), value);
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.values.get(name)
    }
}

/// Measured statistics of one session run (real CPU execution, as opposed
/// to the analytical device model).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Wall-clock seconds of the forward pass.
    pub forward_seconds: f64,
    /// Wall-clock seconds of the backward pass.
    pub backward_seconds: f64,
    /// High-water mark of live tensor bytes in the value store.
    pub peak_value_bytes: u64,
    /// Bytes held across the forward→backward boundary (stash + aux).
    pub boundary_bytes: u64,
    /// Worker threads the kernels ran under (resolved [`ExecPolicy`]).
    pub threads: usize,
    /// High-water mark of the fused interpreter's per-worker scratch
    /// arenas (total across workers, max over kernels); `0` when every
    /// kernel ran on the reference path.
    pub scratch_bytes: u64,
    /// Kernels executed as tiled [`gnnopt_core::KernelProgram`]s instead
    /// of node-by-node.
    pub fused_kernels: u64,
    /// Vertex-reordering strategy the session's graph runs under — the
    /// *resolved* choice ([`ReorderPolicy::Auto`] reports what it picked;
    /// [`ReorderPolicy::None`] when the session keeps the caller's ids).
    pub reorder: ReorderPolicy,
    /// One-time preprocessing cost of the reordering (strategy selection,
    /// permutation, CSR rebuild), measured at session build. Repeated the
    /// same on every run's stats — the cost amortizes over steps instead
    /// of recurring. Nonzero even when `Auto` scored the candidates and
    /// kept the caller's order (`reorder == None`): selection work is
    /// real and is reported either way.
    pub reorder_seconds: f64,
    /// Arena bytes the static memory planner laid out for the value
    /// store at session build (`0` when the arena is off). The measured
    /// [`RunStats::peak_value_bytes`] never exceeds it: the planner
    /// models every store-resident tensor (checked by the arena
    /// invariant suite).
    pub planned_peak_bytes: u64,
    /// Whether the session served tensor storage from the planned arena
    /// (pool-recycled buffers) instead of the global heap.
    pub arena: bool,
    /// Vertex shards the step executed over (`1` for a plain session).
    pub shards: usize,
    /// Bytes moved between shards by halo/replica exchanges and global
    /// gathers during the step (`0` for a plain session). Leaf binding
    /// is distribution, not communication, and is not counted.
    pub comm_bytes: u64,
    /// Total halo rows across shards: vertices a shard reads through an
    /// edge endpoint but does not own (derived from the IR's views).
    pub halo_vertices: u64,
    /// Edges whose endpoints live in different shards.
    pub cut_edges: u64,
    /// Individual exchange operations performed during the step.
    pub halo_exchanges: u64,
    /// Buffer-pool misses during the step: requests the warmed pool
    /// could not serve, degraded to plain heap allocations (graceful
    /// degradation under arena exhaustion, real or injected). Warmed
    /// steady-state steps report `0` — the CI allocation gate depends
    /// on it.
    pub fallback_allocs: u64,
    /// Training steps the [`gnnopt_train`] trainer discarded and
    /// retried after the numeric guard reported a non-finite gradient
    /// (`0` unless the trainer's retry policy is enabled).
    pub nonfinite_retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Fresh,
    ForwardDone,
}

/// Parses the `GNNOPT_FUSED` override: `Ok(None)` when unset,
/// `Ok(Some(_))` on `0`/`1` (and the usual boolean spellings), `Err` on
/// anything else.
pub(crate) fn fused_env() -> std::result::Result<Option<bool>, String> {
    match std::env::var("GNNOPT_FUSED") {
        Err(_) => Ok(None),
        Ok(s) => match s.trim() {
            "0" | "false" | "off" => Ok(Some(false)),
            "1" | "true" | "on" => Ok(Some(true)),
            other => Err(format!("GNNOPT_FUSED must be 0 or 1, got '{other}'")),
        },
    }
}

/// Parses the `GNNOPT_ARENA` override: `Ok(None)` when unset,
/// `Ok(Some(_))` on `0`/`1` (and the usual boolean spellings), `Err` on
/// anything else.
pub(crate) fn arena_env() -> std::result::Result<Option<bool>, String> {
    match std::env::var("GNNOPT_ARENA") {
        Err(_) => Ok(None),
        Ok(s) => match s.trim() {
            "0" | "false" | "off" => Ok(Some(false)),
            "1" | "true" | "on" => Ok(Some(true)),
            other => Err(format!("GNNOPT_ARENA must be 0 or 1, got '{other}'")),
        },
    }
}

/// Parses the `GNNOPT_REORDER` override: `Ok(None)` when unset,
/// `Ok(Some(_))` on a valid strategy spelling (`0`/`none`, `degree`,
/// `bfs`, `rcm`, `cluster`, `auto`), `Err` on anything else.
pub(crate) fn reorder_env() -> std::result::Result<Option<ReorderPolicy>, String> {
    match std::env::var("GNNOPT_REORDER") {
        Err(_) => Ok(None),
        Ok(s) => ReorderPolicy::parse(&s)
            .map(Some)
            .map_err(|e| format!("GNNOPT_REORDER: {e}")),
    }
}

/// Reads the `GNNOPT_GEMM` override (`naive`/`blocked`): `Ok(None)` when
/// unset, `Err` on an unknown kernel name.
pub(crate) fn gemm_env() -> std::result::Result<Option<gnnopt_core::GemmKernel>, String> {
    gnnopt_core::GemmKernel::env()
}

/// Parses the `GNNOPT_GUARD` override (per-kernel non-finite output
/// scanning): `Ok(None)` when unset, `Ok(Some(_))` on `0`/`1` (and the
/// usual boolean spellings), `Err` on anything else.
pub(crate) fn guard_env() -> std::result::Result<Option<bool>, String> {
    match std::env::var("GNNOPT_GUARD") {
        Err(_) => Ok(None),
        Ok(s) => match s.trim() {
            "0" | "false" | "off" => Ok(Some(false)),
            "1" | "true" | "on" => Ok(Some(true)),
            other => Err(format!("GNNOPT_GUARD must be 0 or 1, got '{other}'")),
        },
    }
}

/// Scans one kernel output for the numeric guard: finds the first
/// non-finite element of `t` (one streaming pass, no allocation unless
/// it fails) and localizes it as [`ExecError::NonFinite`]. `kernel` is
/// built lazily so the all-finite path never formats a label. Shared by
/// the plain session and the sharded driver's split/global node paths.
pub(crate) fn scan_nonfinite(
    t: &Tensor,
    node: &str,
    kernel: impl FnOnce() -> String,
) -> Result<()> {
    match gnnopt_tensor::rowops::first_nonfinite(t.as_slice()) {
        None => Ok(()),
        Some(i) => {
            let cols = t.cols().max(1);
            Err(ExecError::NonFinite {
                kernel: kernel(),
                node: node.to_string(),
                row: i / cols,
                col: i % cols,
            })
        }
    }
}

/// The session's one-time reordering preprocessing: the permuted graph
/// plus the vertex/edge bijections that keep the relabeling invisible to
/// callers.
#[derive(Debug)]
struct ReorderState {
    /// The relabeled CSR graph every kernel iterates.
    graph: Graph,
    /// Vertex relabeling (`new_of_old`); bindings move in with
    /// [`Permutation::permute_tensor_rows`], outputs move back with
    /// [`Permutation::unpermute_tensor_rows`].
    vertex: Permutation,
    /// The induced canonical-edge-id relabeling, same conventions.
    edge: Permutation,
    /// The resolved strategy (never `None`/`Auto`).
    strategy: ReorderPolicy,
}

impl ReorderState {
    /// Runs the requested strategy (resolving `Auto` by the smallest mean
    /// gather index gap, identity included) and builds the permuted graph
    /// and bijections. Returns the measured preprocessing seconds — spent
    /// even when the state is `None` because `Auto` scored every
    /// candidate and kept the caller's order — alongside the state
    /// (`None` when the request is `None`, the graph is empty, or the
    /// caller's order won).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Graph`] when a strategy produces a broken
    /// canonical-edge-id map (a reorder-crate bug, reported instead of
    /// panicking so a session build can never abort the process).
    fn build(graph: &Graph, request: ReorderPolicy) -> Result<(f64, Option<Self>)> {
        if request == ReorderPolicy::None || graph.num_vertices() == 0 {
            return Ok((0.0, None));
        }
        let t0 = Instant::now();
        let el = graph.edge_list();
        let Some((strategy, perm)) = Self::resolve(request, &el) else {
            return Ok((t0.elapsed().as_secs_f64(), None));
        };
        let (permuted, edge_map) = perm.apply_to_graph(graph);
        let edge = Permutation::from_new_of_old(edge_map).map_err(|e| {
            ExecError::Graph(format!(
                "reorder strategy {strategy:?} produced a broken canonical-edge-id map: {e}"
            ))
        })?;
        let state = Self {
            graph: permuted,
            vertex: perm,
            edge,
            strategy,
        };
        Ok((t0.elapsed().as_secs_f64(), Some(state)))
    }

    /// Maps a policy to its permutation; `Auto` scores every candidate by
    /// `locality::report(..).mean_gap` (cheap `O(|E|)` per candidate) and
    /// keeps the caller's order when no strategy strictly improves on it.
    ///
    /// Scoring happens on the canonically sorted `apply_to_edges` layout
    /// while the session executes the *stable* `apply_to_graph` CSR, but
    /// `mean_gap` is a per-edge quantity over the relabeled edge multiset
    /// — identical in both layouts — so the score is exact for the graph
    /// actually run (an LRU-based criterion would not be: hit rates
    /// depend on scan order).
    fn resolve(request: ReorderPolicy, el: &EdgeList) -> Option<(ReorderPolicy, Permutation)> {
        use ReorderPolicy as R;
        match request {
            R::None => None,
            R::DegreeSort => Some((R::DegreeSort, strategies::degree_sort(el))),
            R::Bfs => Some((R::Bfs, strategies::bfs(el, 0))),
            R::Rcm => Some((R::Rcm, strategies::rcm(el))),
            R::Cluster => Some((
                R::Cluster,
                strategies::cluster(el, ReorderPolicy::CLUSTER_SWEEPS),
            )),
            R::Auto => {
                let mut best: Option<(R, Permutation)> = None;
                let mut best_gap = locality::report(el).mean_gap; // identity
                for s in [R::DegreeSort, R::Bfs, R::Rcm, R::Cluster] {
                    // Concrete strategies always resolve; skip defensively
                    // rather than panic if that ever changes.
                    let Some((_, p)) = Self::resolve(s, el) else {
                        continue;
                    };
                    let gap = locality::report(&p.apply_to_edges(el)).mean_gap;
                    if gap < best_gap {
                        best_gap = gap;
                        best = Some((s, p));
                    }
                }
                best
            }
        }
    }
}

/// The session's input graph: callers borrow theirs through the
/// builder; sharded execution hands each per-shard session an owned
/// local subgraph it built itself (there is no caller to borrow from).
#[derive(Debug)]
enum GraphSource<'a> {
    Borrowed(&'a Graph),
    Owned(Graph),
}

impl GraphSource<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphSource::Borrowed(g) => g,
            GraphSource::Owned(g) => g,
        }
    }
}

/// Executes an [`ExecutionPlan`] over a concrete graph and bindings.
///
/// The session enforces the plan's memory discipline (drop / stash /
/// recompute), so a plan bug surfaces as [`ExecError::ValueNotLive`]
/// rather than silently reading stale data.
///
/// # Runtime reordering
///
/// When the policy carries a [`ReorderPolicy`] other than `None` (or
/// `GNNOPT_REORDER` overrides it in [`Session::new`]), the session
/// permutes the CSR graph **once at build time** and runs every kernel on
/// the relabeled graph; vertex- and edge-space bindings are permuted on
/// the way in and user-facing outputs inverse-permuted on the way out, so
/// callers never see renamed vertices. Per-destination reduction order is
/// preserved by the stable permutation, so forward results are
/// bit-identical to the identity ordering; backward `BySrc` reductions
/// (the dual of copy-scatters) re-associate, so parameter gradients agree
/// up to floating-point reassociation. The one-time cost is reported as
/// [`RunStats::reorder_seconds`].
#[derive(Debug)]
pub struct Session<'a> {
    plan: &'a ExecutionPlan,
    graph: GraphSource<'a>,
    /// Build-time reordering preprocessing; `None` runs on the caller's
    /// graph as-is.
    reorder: Option<ReorderState>,
    /// One-time preprocessing cost; nonzero even when `Auto` scored the
    /// candidates and kept the caller's order.
    reorder_seconds: f64,
    policy: ExecPolicy,
    values: HashMap<NodeId, Tensor>,
    aux_softmax: HashMap<NodeId, (Tensor, Tensor)>,
    aux_argmax: HashMap<NodeId, Vec<u32>>,
    /// Last kernel that reads each node externally. After construction it
    /// only backs the debug-build assertion that the precomputed death
    /// lists reproduce the liveness sweep, hence unread in release.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    last_reader: HashMap<NodeId, usize>,
    /// Nodes that persist to the end of the step.
    persistent: HashSet<NodeId>,
    /// Per-kernel eviction lists, precomputed at session build time: the
    /// non-persistent nodes whose last external reader is that kernel
    /// (replacing an `O(live values)` sweep after every kernel).
    kernel_deaths: Vec<Vec<NodeId>>,
    /// Serve tensor storage from the planned arena: buffers recycle
    /// through `gnnopt_tensor::pool` instead of the global heap, and the
    /// session evicts at node granularity rather than kernel
    /// granularity. Results are bit-identical either way.
    arena: bool,
    /// The static memory plan backing the arena (empty when it is off).
    memplan: MemoryPlan,
    /// Forward / backward kernel ids in execution order, precomputed so
    /// a steady-state step builds no per-run worklists.
    fwd_kernels: Vec<usize>,
    bwd_kernels: Vec<usize>,
    /// Leaf nodes in IR order (the gradient seed excluded), for
    /// allocation-free binding.
    leaf_ids: Vec<NodeId>,
    /// The training plan's gradient-seed node.
    seed_node: Option<NodeId>,
    /// Node-granular eviction (arena mode, reference path): values keyed
    /// by their last reading node *within* their death kernel, dropped
    /// right after that node executes instead of at the kernel boundary
    /// — the store's high-water mark shrinks, results don't change.
    early_drops: HashMap<NodeId, Vec<NodeId>>,
    /// Forward-owned transients whose death kernel is backward: exactly
    /// the values the forward→backward boundary drops, precomputed so
    /// the boundary needs no store sweep.
    boundary_dead: Vec<NodeId>,
    /// Run fused kernels through the tiled interpreter (plan default or
    /// `GNNOPT_FUSED` override).
    fused: bool,
    /// This session's own buffer free list, seeded with the planner's
    /// regions at build; installed on the thread for the duration of
    /// each run via [`gnnopt_tensor::pool::ScopeGuard`]. Dropping the
    /// session frees the parked buffers with it.
    pool: pool::Pool,
    state: State,
    /// Set when a contained kernel panic left the step half-executed:
    /// the value store may hold partial results, so every subsequent
    /// `begin_*` refuses with [`ExecError::Poisoned`]. The pool itself
    /// stays consistent (workers drained before the panic re-raised),
    /// so the session can still be dropped or trimmed safely.
    poisoned: Option<String>,
    /// Pool-miss counter at `begin_forward`, so the step's
    /// [`RunStats::fallback_allocs`] reports only this step's misses.
    fallback_base: u64,
    live_bytes: u64,
    peak_bytes: u64,
    stats: RunStats,
}

/// How a [`SessionBuilder`] treats the `GNNOPT_*` environment overrides
/// (`GNNOPT_THREADS`, `GNNOPT_FUSED`, `GNNOPT_REORDER`, `GNNOPT_GEMM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnvOverrides {
    /// Apply the overrides; an invalid value is a build error
    /// ([`ExecError::Policy`]). The [`Session::new`] behaviour.
    #[default]
    Loud,
    /// Apply the overrides; an invalid value is skipped silently and the
    /// builder's own setting stands.
    Ignore,
    /// Consult no overrides: the builder's policy and fused choice run
    /// verbatim. (Thread *auto-detection* still honours `GNNOPT_THREADS`
    /// leniently, as it always has — pin `threads` to escape that too.)
    Off,
}

/// Builds a [`Session`] with every implicit choice of the old
/// constructors made explicit: the [`ExecPolicy`], the fused-execution
/// flag, and how the `GNNOPT_*` environment overrides apply. See the
/// [module docs](self) for the migration table.
#[derive(Debug)]
pub struct SessionBuilder<'a> {
    plan: &'a ExecutionPlan,
    graph: &'a Graph,
    policy: Option<ExecPolicy>,
    fused: Option<bool>,
    arena: Option<bool>,
    env: EnvOverrides,
}

impl<'a> SessionBuilder<'a> {
    /// Overrides the plan's own [`ExecPolicy`].
    #[must_use]
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Pins fused execution on or off. An explicit pin outranks both the
    /// `GNNOPT_FUSED` override and the policy's [`ExecPolicy::fused`].
    #[must_use]
    pub fn fused(mut self, fused: bool) -> Self {
        self.fused = Some(fused);
        self
    }

    /// Pins the static-arena allocator on or off (default: **on**). An
    /// explicit pin outranks the `GNNOPT_ARENA` override. Off reproduces
    /// the plain-heap executor byte for byte — same results, same peak
    /// accounting — at the cost of steady-state allocations.
    #[must_use]
    pub fn arena(mut self, arena: bool) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Chooses how the `GNNOPT_*` environment overrides apply
    /// (default: [`EnvOverrides::Loud`]).
    #[must_use]
    pub fn env(mut self, env: EnvOverrides) -> Self {
        self.env = env;
        self
    }

    /// Resolves the environment overrides per the chosen mode and builds
    /// the session.
    ///
    /// Fused execution resolves by precedence: an explicit
    /// [`SessionBuilder::fused`] pin, then a valid `GNNOPT_FUSED`
    /// override (unless [`EnvOverrides::Off`]), then the policy's
    /// [`ExecPolicy::fused`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] on duplicate leaf names,
    /// [`ExecError::Graph`] when the input graph fails structural
    /// validation ([`Graph::validate`]), and — under
    /// [`EnvOverrides::Loud`] only — [`ExecError::Policy`] when
    /// `GNNOPT_THREADS` is set to something other than a positive
    /// integer, `GNNOPT_FUSED`, `GNNOPT_ARENA` or `GNNOPT_GUARD` to
    /// something other than `0`/`1`, `GNNOPT_REORDER` to something
    /// other than a known strategy (`0`/`none`, `degree`, `bfs`, `rcm`,
    /// `cluster`, `auto`), `GNNOPT_GEMM` to something other than
    /// `naive`/`blocked`, or `GNNOPT_FAILPOINTS` to an unparseable
    /// failpoint spec.
    pub fn build(self) -> Result<Session<'a>> {
        let mut policy = self.policy.unwrap_or(self.plan.exec);
        let mut env_fused = None;
        let mut env_arena = None;
        if self.env != EnvOverrides::Off {
            // One resolution path for both modes: `Loud` surfaces an
            // invalid override as a build error, `Ignore` lets the
            // builder's own setting stand.
            let loud = self.env == EnvOverrides::Loud;
            fn apply<T>(
                r: std::result::Result<Option<T>, String>,
                loud: bool,
            ) -> Result<Option<T>> {
                match r {
                    Ok(v) => Ok(v),
                    Err(e) if loud => Err(ExecError::Policy(e)),
                    Err(_) => Ok(None),
                }
            }
            if loud && policy.is_auto() {
                // Surface a bad env override loudly instead of silently
                // falling back like the infallible tensor-side detection.
                gnnopt_tensor::parallel::env_threads().map_err(ExecError::Policy)?;
            }
            env_fused = apply(fused_env(), loud)?;
            env_arena = apply(arena_env(), loud)?;
            policy.reorder = apply(reorder_env(), loud)?.unwrap_or(policy.reorder);
            policy.gemm = apply(gemm_env(), loud)?.unwrap_or(policy.gemm);
            policy.guard = apply(guard_env(), loud)?.unwrap_or(policy.guard);
            match fault::install_from_env() {
                Ok(_) => {}
                Err(e) if loud => return Err(ExecError::Policy(e)),
                Err(_) => {}
            }
        }
        self.graph.validate().map_err(ExecError::Graph)?;
        let fused = self.fused.or(env_fused).unwrap_or(policy.fused);
        policy.fused = fused;
        let arena = self.arena.or(env_arena).unwrap_or(true);
        Session::assemble(
            self.plan,
            GraphSource::Borrowed(self.graph),
            policy,
            fused,
            arena,
        )
    }
}

impl<'a> Session<'a> {
    /// Starts a [`SessionBuilder`] — the documented construction path.
    /// Defaults: the plan's own policy, fused per `GNNOPT_FUSED` else
    /// [`ExecPolicy::fused`], and [`EnvOverrides::Loud`].
    pub fn builder(plan: &'a ExecutionPlan, graph: &'a Graph) -> SessionBuilder<'a> {
        SessionBuilder {
            plan,
            graph,
            policy: None,
            fused: None,
            arena: None,
            env: EnvOverrides::default(),
        }
    }

    /// Prepares a session running under the plan's own [`ExecPolicy`]
    /// (from `CompileOptions::exec`), validating that leaf names are
    /// unique. An `auto` policy resolves against the shared pool-size
    /// detection in `gnnopt_tensor::parallel`, which honours the
    /// `GNNOPT_THREADS` environment override.
    ///
    /// Shim for `Session::builder(plan, graph).build()` — prefer the
    /// builder in new code.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] on duplicate leaf names, or
    /// [`ExecError::Policy`] when `GNNOPT_THREADS` is set to something
    /// other than a positive integer, `GNNOPT_FUSED` to something other
    /// than `0`/`1`, `GNNOPT_REORDER` to something other than a known
    /// strategy (`0`/`none`, `degree`, `bfs`, `rcm`, `cluster`, `auto`),
    /// or `GNNOPT_GEMM` to something other than `naive`/`blocked`.
    #[deprecated(note = "use `Session::builder(plan, graph).build()`")]
    pub fn new(plan: &'a ExecutionPlan, graph: &'a Graph) -> Result<Self> {
        Self::builder(plan, graph).build()
    }

    /// Prepares a session under an explicit policy instead of the plan's
    /// own. A nonzero `threads` is used verbatim — independent of any
    /// `GNNOPT_THREADS` override — which is how serial-vs-parallel
    /// comparisons pin the backend. `threads = 0` still auto-detects
    /// (and auto-detection honours `GNNOPT_THREADS`, falling back to
    /// hardware parallelism on an invalid value; use [`Session::new`]
    /// for the loud-error behaviour).
    ///
    /// Shim preserved for compatibility — prefer the builder in new
    /// code. Historically this consulted *only* the `GNNOPT_FUSED`
    /// override (leniently, defaulting to the plan's fused choice), so
    /// the shim pins exactly that:
    /// `.policy(policy).fused(env or plan).env(Off)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] on duplicate leaf names.
    #[deprecated(
        note = "use `Session::builder(..).policy(..).env(EnvOverrides::Off).build()`; \
                pin `.fused(..)` explicitly if the lenient GNNOPT_FUSED read matters"
    )]
    pub fn with_policy(
        plan: &'a ExecutionPlan,
        graph: &'a Graph,
        policy: ExecPolicy,
    ) -> Result<Self> {
        // Lenient env handling (mirrors the thread auto-detection):
        // an invalid GNNOPT_FUSED falls back to the plan's default.
        let fused = fused_env().ok().flatten().unwrap_or(plan.exec.fused);
        Self::builder(plan, graph)
            .policy(policy)
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
    }

    /// Prepares a session with both the policy *and* the fused-execution
    /// choice pinned explicitly — independent of the plan's defaults and
    /// of any `GNNOPT_FUSED`/`GNNOPT_THREADS`/`GNNOPT_REORDER`/
    /// `GNNOPT_GEMM` override (the policy's own [`ExecPolicy::reorder`]
    /// and [`ExecPolicy::gemm`] fields are honoured verbatim). This is
    /// how fused-vs-reference, reordered-vs-identity and
    /// naive-vs-blocked-GEMM comparisons pin both sides.
    ///
    /// Shim for
    /// `Session::builder(..).policy(policy).fused(fused).env(Off).build()`
    /// — prefer the builder in new code.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] on duplicate leaf names.
    #[deprecated(
        note = "use `Session::builder(..).policy(..).fused(..).env(EnvOverrides::Off).build()`"
    )]
    pub fn with_policy_fused(
        plan: &'a ExecutionPlan,
        graph: &'a Graph,
        policy: ExecPolicy,
        fused: bool,
    ) -> Result<Self> {
        Self::builder(plan, graph)
            .policy(policy)
            .fused(fused)
            .env(EnvOverrides::Off)
            .build()
    }

    /// The shared construction tail: leaf-name validation, liveness
    /// precomputation (shared with the memory planner via
    /// [`gnnopt_core::memplan::liveness`] — one source of truth), memory
    /// planning and pool pre-seeding, reorder preprocessing. `policy`
    /// arrives with the env overrides already folded in by the builder.
    /// Builds a per-shard session over an *owned* local subgraph: the
    /// sharded executor constructs each shard's graph itself, so there
    /// is no caller-owned graph to borrow. Reordering is pinned off —
    /// shard-local ids must stay aligned with the driver's exchange
    /// maps — and env overrides are already folded into `policy` by the
    /// sharded builder.
    pub(crate) fn assemble_owned(
        plan: &'a ExecutionPlan,
        graph: Graph,
        mut policy: ExecPolicy,
        fused: bool,
        arena: bool,
    ) -> Result<Self> {
        policy.reorder = ReorderPolicy::None;
        Self::assemble(plan, GraphSource::Owned(graph), policy, fused, arena)
    }

    fn assemble(
        plan: &'a ExecutionPlan,
        graph: GraphSource<'a>,
        policy: ExecPolicy,
        fused: bool,
        arena: bool,
    ) -> Result<Self> {
        let policy = policy.resolved(gnnopt_tensor::parallel::available_threads);
        let mut leaf_names = HashMap::new();
        let mut leaf_ids: Vec<NodeId> = Vec::new();
        let mut seed_node = None;
        for n in plan.ir.nodes() {
            if matches!(
                n.kind,
                OpKind::InputVertex | OpKind::InputEdge | OpKind::Param | OpKind::GradSeed
            ) {
                if leaf_names.insert(n.name.clone(), n.id).is_some() {
                    return Err(ExecError::Protocol(format!(
                        "duplicate leaf name '{}'",
                        n.name
                    )));
                }
                if n.kind == OpKind::GradSeed {
                    seed_node = Some(n.id); // bound by backward()
                } else {
                    leaf_ids.push(n.id);
                }
            }
        }

        // The executor's eviction discipline and the memory planner's
        // interval analysis are the same computation — sharing it is what
        // lets the planned arena provably cover the store.
        let lv = memplan::liveness(plan);

        let fwd_kernels: Vec<usize> = (0..plan.kernels.len())
            .filter(|&k| memplan::kernel_phase(plan, k) == Phase::Forward)
            .collect();
        let bwd_kernels: Vec<usize> = (0..plan.kernels.len())
            .filter(|&k| memplan::kernel_phase(plan, k) == Phase::Backward)
            .collect();

        // The forward→backward boundary drops every live transient. At
        // that point the live transients are exactly the forward-phase
        // nodes whose death kernel is backward (everything else was
        // evicted by its own death list), so the boundary needs no sweep.
        let mut boundary_dead: Vec<NodeId> = Vec::new();
        if plan.training {
            for &kid in &bwd_kernels {
                for &n in &lv.kernel_deaths[kid] {
                    if plan.ir.node(n).phase == Phase::Forward {
                        boundary_dead.push(n);
                    }
                }
            }
        }

        // Node-granular eviction for the arena's reference path: a dying
        // external input frees right after its last reading node inside
        // its death kernel, so its buffer recycles into the kernel's own
        // outputs. (Recompute rebuilds run *before* the member nodes, so
        // dropping after any member read is safe; recompute spills have
        // their own drop.)
        let mut early_drops: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        if arena && !fused {
            for k in &plan.kernels {
                let members: HashSet<NodeId> =
                    k.nodes.iter().chain(&k.recompute).copied().collect();
                let mut last_in_kernel: HashMap<NodeId, NodeId> = HashMap::new();
                for &nid in &k.nodes {
                    for &i in &plan.ir.node(nid).inputs {
                        if !members.contains(&i)
                            && !lv.persistent.contains(&i)
                            && lv.last_reader.get(&i) == Some(&k.id)
                        {
                            last_in_kernel.insert(i, nid);
                        }
                    }
                }
                for (i, reader) in last_in_kernel {
                    early_drops.entry(reader).or_default().push(i);
                }
            }
            for drops in early_drops.values_mut() {
                drops.sort_unstable();
            }
        }

        let memplan = if arena {
            memplan::plan_memory(
                plan,
                graph.get().num_vertices(),
                graph.get().num_edges(),
                fused,
            )
        } else {
            MemoryPlan::default()
        };
        // Pre-seed this session's own pool with the planned buffers so
        // the very first step already finds every store buffer recycled
        // (steady state from step one on the serial reference path).
        let pool = pool::Pool::new();
        for elems in memplan.buffers() {
            pool.seed_f32(elems);
        }
        // Shape vectors recycle too; seed enough that the shape bucket
        // never misses (one per region upper-bounds the concurrent live
        // tensors; aux stats tensors and in-flight transients get slack).
        if arena {
            for _ in 0..memplan.regions.len() + 2 * plan.aux_stash.len() + 4 {
                pool.seed_shape(4);
            }
        }

        let (reorder_seconds, reorder) = ReorderState::build(graph.get(), policy.reorder)?;
        Ok(Self {
            plan,
            graph,
            reorder,
            reorder_seconds,
            policy,
            values: HashMap::new(),
            aux_softmax: HashMap::new(),
            aux_argmax: HashMap::new(),
            last_reader: lv.last_reader,
            persistent: lv.persistent,
            kernel_deaths: lv.kernel_deaths,
            arena,
            memplan,
            fwd_kernels,
            bwd_kernels,
            leaf_ids,
            seed_node,
            early_drops,
            boundary_dead,
            fused,
            pool,
            state: State::Fresh,
            poisoned: None,
            fallback_base: 0,
            live_bytes: 0,
            peak_bytes: 0,
            stats: RunStats::default(),
        })
    }

    /// Measured statistics of the most recent run.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The resolved execution policy this session runs kernels under.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// True when fused kernels run through the tiled interpreter.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// True when the session serves tensor storage from the planned
    /// arena.
    pub fn arena(&self) -> bool {
        self.arena
    }

    /// True when a contained kernel panic poisoned the session: the
    /// step's results were discarded and every subsequent `begin_*`
    /// returns [`ExecError::Poisoned`]. The session's pool stays
    /// consistent (it can be trimmed or dropped safely); rebuild from
    /// the same plan to continue.
    pub fn poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// This session's buffer pool — exposed so robustness tests can
    /// assert the pool survives a poisoning event consistently (trim
    /// succeeds, counters balance).
    pub fn pool(&self) -> &pool::Pool {
        &self.pool
    }

    /// The static memory plan this session's storage follows (empty when
    /// the arena is off): planned offsets, lifetimes and the arena's
    /// total size.
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.memplan
    }

    /// The resolved reordering strategy and the one-time preprocessing
    /// cost in seconds. `ReorderPolicy::None` when the session keeps the
    /// caller's vertex order — with a *nonzero* cost when `Auto` scored
    /// every candidate and decided the caller's order was already best
    /// (the selection work is real and is reported either way).
    pub fn reorder(&self) -> (ReorderPolicy, f64) {
        (
            self.reorder
                .as_ref()
                .map_or(ReorderPolicy::None, |r| r.strategy),
            self.reorder_seconds,
        )
    }

    /// The graph the kernels actually iterate: the relabeled CSR when the
    /// session reorders, the caller's graph otherwise.
    fn active_graph(&self) -> &Graph {
        self.reorder.as_ref().map_or(self.graph.get(), |r| &r.graph)
    }

    /// Moves a user-order binding into the session's (possibly reordered)
    /// row order. Parameter-space tensors carry no graph rows and pass
    /// through untouched.
    fn permute_input(&self, space: Space, t: Tensor) -> Tensor {
        match (&self.reorder, space) {
            (Some(st), Space::Vertex) => st.vertex.permute_tensor_rows(&t),
            (Some(st), Space::Edge) => st.edge.permute_tensor_rows(&t),
            _ => t,
        }
    }

    /// Borrowing variant for callers that would otherwise clone just to
    /// call [`Session::permute_input`]: clones only when the tensor
    /// passes through unpermuted.
    fn permute_input_ref(&self, space: Space, t: &Tensor) -> Tensor {
        match (&self.reorder, space) {
            (Some(st), Space::Vertex) => st.vertex.permute_tensor_rows(t),
            (Some(st), Space::Edge) => st.edge.permute_tensor_rows(t),
            _ => t.clone(),
        }
    }

    /// Restores a session-order result to the caller's row order.
    fn unpermute_output(&self, space: Space, t: Tensor) -> Tensor {
        let Some(st) = &self.reorder else { return t };
        match space {
            Space::Vertex => st.vertex.unpermute_tensor_rows(&t),
            Space::Edge => st.edge.unpermute_tensor_rows(&t),
            Space::Param => t,
        }
    }

    /// Runs the forward kernels, returning the model outputs in
    /// declaration order.
    ///
    /// # Errors
    ///
    /// Returns binding errors, or [`ExecError::ValueNotLive`] if the plan's
    /// memory discipline is inconsistent.
    pub fn forward(&mut self, bindings: &Bindings) -> Result<Vec<Tensor>> {
        let _scope = self.scope();
        self.run_forward(bindings)?;
        self.plan
            .ir
            .outputs()
            .iter()
            .map(|&o| {
                let t = self
                    .values
                    .get(&o)
                    .cloned()
                    .ok_or_else(|| ExecError::ValueNotLive {
                        node: self.plan.ir.node(o).name.clone(),
                    })?;
                // Callers never see renamed vertices/edges.
                Ok(self.unpermute_output(self.plan.ir.node(o).space, t))
            })
            .collect()
    }

    /// The forward body shared by [`Session::forward`] and
    /// [`Session::step`]: executes the kernels and leaves the outputs in
    /// the store (the callers add their own tails).
    fn run_forward(&mut self, bindings: &Bindings) -> Result<()> {
        self.begin_forward(bindings)?;
        let t0 = Instant::now();
        for i in 0..self.fwd_kernels.len() {
            let kid = self.fwd_kernels[i];
            self.exec_kernel(kid, false)?;
        }
        self.stats.forward_seconds = t0.elapsed().as_secs_f64();
        self.finish_forward();
        Ok(())
    }

    /// Forward-pass prologue: reset, bind, stamp the per-run stats
    /// header. Split out so the sharded driver can run the kernel loop
    /// itself (interleaving exchanges) between this and
    /// [`Session::finish_forward`].
    pub(crate) fn begin_forward(&mut self, bindings: &Bindings) -> Result<()> {
        self.check_poisoned()?;
        self.reset();
        self.fallback_base = self.pool.misses();
        self.bind_leaves(bindings)?;
        self.stats.threads = self.policy.threads;
        self.stats.arena = self.arena;
        self.stats.shards = 1;
        self.stats.planned_peak_bytes = self.memplan.arena_bytes;
        // The preprocessing happened once at session build; every run
        // reports the same one-time figure (amortized, not recurring).
        let (reorder, reorder_seconds) = self.reorder();
        self.stats.reorder = reorder;
        self.stats.reorder_seconds = reorder_seconds;
        Ok(())
    }

    /// Forward-pass epilogue: the forward→backward boundary drop and the
    /// state transition.
    pub(crate) fn finish_forward(&mut self) {
        // Inference runs stop here; report the high-water mark either way
        // (backward refreshes it with the final value).
        self.stats.peak_value_bytes = self.peak_bytes;
        self.stats.fallback_allocs = self.pool.misses() - self.fallback_base;

        // Forward→backward boundary: everything non-persistent drops here,
        // exercising the recomputation plan for real. The set was
        // precomputed at build — no store sweep.
        if self.plan.training {
            for i in 0..self.boundary_dead.len() {
                let n = self.boundary_dead[i];
                self.drop_value(n);
            }
            debug_assert!(
                self.values.keys().all(|n| self.persistent.contains(n)),
                "boundary-dead list diverges from the liveness sweep"
            );
            self.stats.boundary_bytes = self.live_bytes
                + self
                    .aux_softmax
                    .values()
                    .map(|(m, d)| (m.byte_size() + d.byte_size()) as u64)
                    .sum::<u64>()
                + self
                    .aux_argmax
                    .values()
                    .map(|a| 4 * a.len() as u64)
                    .sum::<u64>();
        }

        self.state = State::ForwardDone;
    }

    /// Runs the backward kernels with the given `∂L/∂output` seed and
    /// returns parameter gradients keyed by parameter name.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] unless called right after
    /// [`Session::forward`] on a training plan.
    pub fn backward(&mut self, seed: Tensor) -> Result<HashMap<String, Tensor>> {
        let _scope = self.scope();
        self.run_backward(seed)?;
        let mut grads = HashMap::new();
        for &(p, g) in &self.plan.param_grads {
            let name = self.plan.ir.node(p).name.clone();
            let val = self
                .values
                .get(&g)
                .cloned()
                .ok_or_else(|| ExecError::ValueNotLive {
                    node: format!("grad of {name}"),
                })?;
            grads.insert(name, val);
        }
        Ok(grads)
    }

    /// The backward body shared by [`Session::backward`] and
    /// [`Session::step`]: gradients stay in the store.
    fn run_backward(&mut self, seed: Tensor) -> Result<()> {
        self.begin_backward(seed)?;
        let t0 = Instant::now();
        for i in 0..self.bwd_kernels.len() {
            let kid = self.bwd_kernels[i];
            self.exec_kernel(kid, true)?;
        }
        self.stats.backward_seconds = t0.elapsed().as_secs_f64();
        self.finish_backward();
        Ok(())
    }

    /// Backward-pass prologue: protocol checks and seed binding. The
    /// sharded driver brackets its own kernel loop with this and
    /// [`Session::finish_backward`].
    pub(crate) fn begin_backward(&mut self, seed: Tensor) -> Result<()> {
        self.check_poisoned()?;
        if !self.plan.training {
            return Err(ExecError::Protocol(
                "plan was compiled for inference".into(),
            ));
        }
        if self.state != State::ForwardDone {
            return Err(ExecError::Protocol(
                "call forward() before backward()".into(),
            ));
        }
        let plan = self.plan;
        let Some(seed_id) = self.seed_node else {
            return Err(ExecError::Protocol(
                "training plan has no gradient-seed node (plan inconsistency)".into(),
            ));
        };
        let seed_node = plan.ir.node(seed_id);
        self.check_shape(seed_node, &seed)?;
        // The caller seeds ∂L/∂output in their own vertex order.
        let seed = self.permute_input(seed_node.space, seed);
        self.insert_value(seed_id, seed);
        Ok(())
    }

    /// Backward-pass epilogue: final peak accounting and the state
    /// transition back to [`State::Fresh`].
    pub(crate) fn finish_backward(&mut self) {
        self.stats.peak_value_bytes = self.peak_bytes;
        self.stats.fallback_allocs = self.pool.misses() - self.fallback_base;
        self.state = State::Fresh;
    }

    /// Refuses to start a step on a poisoned session.
    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(why) => Err(ExecError::Poisoned(why.clone())),
            None => Ok(()),
        }
    }

    /// One full training step — forward then backward — with **no
    /// user-facing clones**: outputs and gradients stay in the store for
    /// borrowing via [`Session::output_ref`] / [`Session::grad_ref`].
    ///
    /// This is the steady-state entry point of the static memory
    /// planner: with the arena on, a warmed session performs zero heap
    /// allocations per call on the serial reference path — every tensor
    /// the step creates comes out of the planner-seeded pool (enforced
    /// by the counting-allocator suite).
    ///
    /// # Errors
    ///
    /// As [`Session::forward`] and [`Session::backward`].
    pub fn step(&mut self, bindings: &Bindings, seed: &Tensor) -> Result<()> {
        let _scope = self.scope();
        self.run_forward(bindings)?;
        self.run_backward(seed.clone())
    }

    /// Installs this session's pool on the current thread for the
    /// guard's lifetime (a no-op guard when the arena is off). The
    /// sharded driver brackets each shard's work the same way.
    pub(crate) fn scope(&self) -> pool::ScopeGuard {
        pool::ScopeGuard::new(self.arena.then_some(&self.pool))
    }

    /// Borrows model output `i` from the store after [`Session::step`]
    /// (or [`Session::forward`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] under vertex reordering — the
    /// stored rows are in session order and only [`Session::forward`]'s
    /// owned tail unpermutes them — or for an out-of-range index;
    /// [`ExecError::ValueNotLive`] before the first run.
    pub fn output_ref(&self, i: usize) -> Result<&Tensor> {
        if self.reorder.is_some() {
            return Err(ExecError::Protocol(
                "outputs are stored in reordered row order; use forward()'s returned tensors"
                    .into(),
            ));
        }
        let Some(&o) = self.plan.ir.outputs().get(i) else {
            return Err(ExecError::Protocol(format!("no model output #{i}")));
        };
        self.value(o)
    }

    /// Borrows the gradient of parameter `name` from the store after
    /// [`Session::step`]. Parameter tensors carry no graph rows, so this
    /// works under vertex reordering too.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Protocol`] for an unknown parameter,
    /// [`ExecError::ValueNotLive`] before the first backward run.
    pub fn grad_ref(&self, name: &str) -> Result<&Tensor> {
        for &(p, g) in &self.plan.param_grads {
            if self.plan.ir.node(p).name == name {
                return self.value(g);
            }
        }
        Err(ExecError::Protocol(format!("unknown parameter '{name}'")))
    }

    fn reset(&mut self) {
        self.values.clear();
        self.aux_softmax.clear();
        // Argmax tables recycle through the pool like tensors do (they
        // are plain `Vec<u32>`s, invisible to `Tensor`'s pooled drop).
        for (_, a) in self.aux_argmax.drain() {
            pool::put_u32(a);
        }
        self.live_bytes = 0;
        self.peak_bytes = 0;
        self.stats = RunStats::default();
        self.state = State::Fresh;
    }

    fn bind_leaves(&mut self, bindings: &Bindings) -> Result<()> {
        let plan = self.plan;
        for i in 0..self.leaf_ids.len() {
            let id = self.leaf_ids[i];
            let node = plan.ir.node(id);
            let t = bindings
                .get(&node.name)
                .ok_or_else(|| ExecError::MissingBinding(node.name.clone()))?;
            self.check_shape(node, t)?;
            let t = self.permute_input_ref(node.space, t);
            self.insert_value(id, t);
        }
        Ok(())
    }

    fn check_shape(&self, node: &Node, t: &Tensor) -> Result<()> {
        // Row counts are permutation-invariant, so checking against the
        // caller's graph or the reordered one is equivalent.
        let expected = match node.space {
            Space::Vertex => (self.graph.get().num_vertices(), node.dim.total()),
            Space::Edge => (self.graph.get().num_edges(), node.dim.total()),
            Space::Param => (node.dim.heads, node.dim.feat),
        };
        if t.rows() != expected.0 || t.cols() != expected.1 {
            return Err(ExecError::BindingShape {
                name: node.name.clone(),
                expected,
                got: t.shape().to_vec(),
            });
        }
        Ok(())
    }

    pub(crate) fn insert_value(&mut self, id: NodeId, t: Tensor) {
        // Retire the overwritten value *before* taking the high-water
        // mark: overwriting is a replacement, not a moment where both
        // tensors are live, so the old accounting (add, peak, subtract)
        // transiently inflated the reported peak.
        self.live_bytes += t.byte_size() as u64;
        if let Some(old) = self.values.insert(id, t) {
            self.live_bytes -= old.byte_size() as u64;
        }
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    pub(crate) fn drop_value(&mut self, id: NodeId) {
        if let Some(old) = self.values.remove(&id) {
            self.live_bytes -= old.byte_size() as u64;
        }
    }

    /// Human-readable label of a kernel launch, for fault diagnostics:
    /// schedule id, phase, and member node names.
    pub(crate) fn kernel_label(&self, kid: usize, backward: bool) -> String {
        let names: Vec<&str> = self.plan.kernels[kid]
            .nodes
            .iter()
            .map(|&n| self.plan.ir.node(n).name.as_str())
            .collect();
        format!(
            "K{kid} {} [{}]",
            if backward { "bwd" } else { "fwd" },
            names.join("+")
        )
    }

    /// The numeric guard's per-output scan (active when
    /// [`ExecPolicy::guard`] is set): localizes the first non-finite
    /// element of `t` to `(kernel, node, row, col)`. One streaming pass
    /// over the output, no allocation on the all-finite path.
    fn guard_output(&self, kid: usize, backward: bool, node: NodeId, t: &Tensor) -> Result<()> {
        if !self.policy.guard {
            return Ok(());
        }
        scan_nonfinite(t, &self.plan.ir.node(node).name, || {
            self.kernel_label(kid, backward)
        })
    }

    pub(crate) fn exec_kernel(&mut self, kid: usize, backward: bool) -> Result<()> {
        let t = Instant::now();
        // Containment boundary: a panicking worker (or a panic on this
        // thread inside a kernel body) surfaces as a typed error instead
        // of aborting the step, and poisons the session — the store may
        // hold partial results, but the pool stays consistent because
        // every scoped worker joined before the panic re-raised.
        let r = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.exec_kernel_inner(kid, backward)
        })) {
            Ok(r) => r,
            Err(p) => {
                let kernel = self.kernel_label(kid, backward);
                let payload = contain::payload_str(p.as_ref());
                self.poisoned = Some(format!("kernel '{kernel}' panicked: {payload}"));
                Err(ExecError::KernelPanic { kernel, payload })
            }
        };
        if std::env::var_os("GNNOPT_PROFILE").is_some() {
            let names: Vec<&str> = self.plan.kernels[kid]
                .nodes
                .iter()
                .map(|&n| self.plan.ir.node(n).name.as_str())
                .collect();
            eprintln!(
                "PROF {} kid={kid} {:.1}ms [{}]",
                if backward { "bwd" } else { "fwd" },
                t.elapsed().as_secs_f64() * 1e3,
                names.join("+")
            );
        }
        r
    }

    fn exec_kernel_inner(&mut self, kid: usize, backward: bool) -> Result<()> {
        let plan = self.plan;
        // Fused tiled path: kernel-internal values stay in per-worker
        // scratch and never enter the value store (incl. recomputed
        // values, which rebuild per tile instead of per kernel).
        if self.fused {
            if let Some(program) = plan.programs.get(kid) {
                let graph: &Graph = match &self.reorder {
                    Some(r) => &r.graph,
                    None => self.graph.get(),
                };
                // Arena mode: the interpreter frees each dying input as
                // soon as its last reading segment completes, so its
                // buffer recycles into the launch's own materializations
                // — the measured peak drops below the heap path's.
                let evict: Option<&[NodeId]> = if self.arena {
                    Some(&self.kernel_deaths[kid])
                } else {
                    None
                };
                let res = fused::run_program(
                    &self.policy,
                    graph,
                    &plan.ir,
                    program,
                    &mut self.values,
                    &self.aux_softmax,
                    &self.aux_argmax,
                    evict,
                )?;
                self.live_bytes -= res.evicted_bytes;
                for (n, aux) in res.new_aux_softmax {
                    self.aux_softmax.insert(n, aux);
                }
                for (n, a) in res.new_aux_argmax {
                    self.aux_argmax.insert(n, a);
                }
                for (n, t) in res.outputs {
                    self.guard_output(kid, backward, n, &t)?;
                    self.insert_value(n, t);
                }
                // A recomputed value spilled to an interior tensor must
                // drop here, like the reference path's explicit recompute
                // drop: its death list belongs to its *forward* kernel,
                // which already ran.
                for &r in &plan.kernels[kid].recompute {
                    if !self.persistent.contains(&r) {
                        self.drop_value(r);
                    }
                }
                self.stats.scratch_bytes = self.stats.scratch_bytes.max(res.scratch_bytes);
                self.stats.fused_kernels += 1;
                self.evict_after(kid);
                return Ok(());
            }
        }
        let kernel = &plan.kernels[kid];
        // Rebuild recomputed forward values first (backward kernels only).
        if backward {
            for &r in &kernel.recompute {
                if !self.values.contains_key(&r) {
                    let t = self.exec_node(r)?;
                    self.insert_value(r, t);
                }
            }
        }
        for &n in &kernel.nodes {
            let t = match self.take_inplace_input(n)? {
                Some(t) => t,
                None => self.exec_node(n)?,
            };
            self.guard_output(kid, backward, n, &t)?;
            self.insert_value(n, t);
            // Arena mode: inputs whose last read was this node free now,
            // not at the kernel boundary — later members of this kernel
            // reuse their buffers (empty map when the arena is off).
            let nd = self.early_drops.get(&n).map_or(0, Vec::len);
            for j in 0..nd {
                let d = self.early_drops[&n][j];
                self.drop_value(d);
            }
        }
        // Recomputed values are kernel-local: drop them again.
        if backward {
            for &r in &kernel.recompute {
                if !self.persistent.contains(&r) {
                    self.drop_value(r);
                }
            }
        }
        self.evict_after(kid);
        Ok(())
    }

    /// The arena's in-place fast path: a `Unary` / `SetHeads` node whose
    /// single input dies at this very node reuses the input's buffer
    /// instead of allocating an output and freeing the input a moment
    /// later. Elementwise application keeps results bit-identical to the
    /// out-of-place kernel.
    fn take_inplace_input(&mut self, id: NodeId) -> Result<Option<Tensor>> {
        if !self.arena || self.fused {
            return Ok(None);
        }
        let plan = self.plan;
        let node = plan.ir.node(id);
        let f = match node.kind {
            OpKind::Unary(f) => Some(f),
            OpKind::SetHeads { .. } => None,
            _ => return Ok(None),
        };
        let input = node.inputs[0];
        if !self
            .early_drops
            .get(&id)
            .is_some_and(|d| d.contains(&input))
        {
            return Ok(None);
        }
        let Some(mut x) = self.values.remove(&input) else {
            return Ok(None);
        };
        self.live_bytes -= x.byte_size() as u64;
        if let Some(f) = f {
            kernels::unary_inplace(&self.policy, f, &mut x);
        }
        Ok(Some(x))
    }

    /// Plan-driven eviction of dead transients, from the per-kernel death
    /// lists precomputed at session build time. Tolerates entries the
    /// arena already dropped early (node-granular eviction, in-place
    /// reuse, mid-launch frees): `drop_value` no-ops on a missing node.
    pub(crate) fn evict_after(&mut self, kid: usize) {
        for i in 0..self.kernel_deaths[kid].len() {
            let n = self.kernel_deaths[kid][i];
            self.drop_value(n);
        }
        // The lists must reproduce the old O(live-values) sweep exactly:
        // after applying them, no live transient may be past its last
        // external reader. (Written allocation-free: the counting
        // allocator enforces zero steady-state allocations in debug
        // builds too.)
        debug_assert!(
            self.values.keys().all(|n| {
                self.persistent.contains(n) || self.last_reader.get(n).is_some_and(|&k| k > kid)
            }),
            "death lists diverge from the liveness sweep after kernel {kid}"
        );
    }

    pub(crate) fn value(&self, id: NodeId) -> Result<&Tensor> {
        self.values.get(&id).ok_or_else(|| ExecError::ValueNotLive {
            node: self.plan.ir.node(id).name.clone(),
        })
    }

    /// Mutable access to a live value — the sharded driver patches halo
    /// and replica rows in place between kernels.
    pub(crate) fn value_mut(&mut self, id: NodeId) -> Result<&mut Tensor> {
        let name = &self.plan.ir.node(id).name;
        self.values
            .get_mut(&id)
            .ok_or_else(|| ExecError::ValueNotLive { node: name.clone() })
    }

    /// Whether `id` is live in the store.
    pub(crate) fn has_value(&self, id: NodeId) -> bool {
        self.values.contains_key(&id)
    }

    /// Whether `id` persists to the end of the step (outputs, gradients,
    /// stash-planned values).
    pub(crate) fn is_persistent(&self, id: NodeId) -> bool {
        self.persistent.contains(&id)
    }

    /// The caller-facing graph (shard-local for per-shard sessions).
    pub(crate) fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// Forward kernel ids in execution order.
    pub(crate) fn fwd_kernel_ids(&self) -> &[usize] {
        &self.fwd_kernels
    }

    /// Backward kernel ids in execution order.
    pub(crate) fn bwd_kernel_ids(&self) -> &[usize] {
        &self.bwd_kernels
    }

    /// Executes one node on the reference path: operands come out of the
    /// value store, auxiliaries out of the session stashes, and the op
    /// itself runs through the shared dispatch in [`crate::refexec`] —
    /// the same dispatch the fused interpreter uses for full steps.
    pub(crate) fn exec_node(&mut self, id: NodeId) -> Result<Tensor> {
        let node = self.plan.ir.node(id);
        let (t, aux_out) = {
            // Operand lookup without a per-node Vec (no op reads more
            // than 8 inputs): part of the zero-allocation steady state.
            debug_assert!(node.inputs.len() <= 8, "op with >8 inputs");
            let inputs_buf: [&Tensor; 8];
            let inputs: &[&Tensor] = if node.inputs.is_empty() {
                &[]
            } else {
                let first = self.value(node.inputs[0])?;
                let mut buf = [first; 8];
                for (j, &i) in node.inputs.iter().enumerate().skip(1) {
                    buf[j] = self.value(i)?;
                }
                inputs_buf = buf;
                &inputs_buf[..node.inputs.len()]
            };
            let aux_in = match &node.kind {
                OpKind::EdgeSoftmax => self
                    .aux_softmax
                    .get(&id)
                    .map_or(refexec::AuxIn::None, |(m, d)| refexec::AuxIn::Softmax(m, d)),
                OpKind::GatherMaxBwd { fwd } => {
                    let table =
                        self.aux_argmax
                            .get(fwd)
                            .ok_or_else(|| ExecError::ValueNotLive {
                                node: format!("argmax aux of node {fwd}"),
                            })?;
                    refexec::AuxIn::Argmax(table)
                }
                _ => refexec::AuxIn::None,
            };
            refexec::exec_op(
                &self.policy,
                self.active_graph(),
                &self.plan.ir,
                node,
                inputs,
                aux_in,
            )?
        };
        match aux_out {
            refexec::AuxOut::Softmax(m, d) => {
                self.aux_softmax.insert(id, (m, d));
            }
            refexec::AuxOut::Argmax(a) => {
                self.aux_argmax.insert(id, a);
            }
            refexec::AuxOut::None => {}
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnopt_core::{compile, BinaryFn, CompileOptions, Dim, EdgeGroup, IrGraph, ScatterFn};
    use gnnopt_graph::EdgeList;

    fn tiny_plan() -> ExecutionPlan {
        let mut ir = IrGraph::new();
        let h = ir.input_vertex("h", Dim::flat(2));
        let e = ir.scatter(ScatterFn::Bin(BinaryFn::Sub), h, h).unwrap();
        let v = ir
            .gather(gnnopt_core::ReduceFn::Sum, EdgeGroup::ByDst, e)
            .unwrap();
        ir.mark_output(v);
        compile(&ir, false, &CompileOptions::ours()).unwrap().plan
    }

    /// Regression: overwriting a live value is a replacement, not a
    /// moment where both tensors coexist — the peak must not transiently
    /// count old + new together.
    #[test]
    fn overwrite_does_not_inflate_peak_bytes() {
        let graph = Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1), (1, 2)]));
        let plan = tiny_plan();
        let mut sess = Session::builder(&plan, &graph)
            .policy(ExecPolicy::serial())
            .fused(false)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let t = Tensor::zeros(&[8, 4]); // 128 bytes
        sess.insert_value(1, t.clone());
        assert_eq!(sess.peak_bytes, 128);
        sess.insert_value(1, t);
        assert_eq!(
            sess.peak_bytes, 128,
            "same-size overwrite must keep the peak at one tensor's bytes"
        );
        assert_eq!(sess.live_bytes, 128);
        // Shrinking overwrite: live drops, peak stays.
        sess.insert_value(1, Tensor::zeros(&[4, 4]));
        assert_eq!(sess.live_bytes, 64);
        assert_eq!(sess.peak_bytes, 128);
    }

    /// Reordering is one-time work: the session pays it at build, and
    /// every subsequent run reports the *same* preprocessing figure
    /// instead of accumulating or re-measuring it — the amortization
    /// contract the paper's runtime-preprocessing argument relies on.
    #[test]
    fn reorder_cost_is_reported_and_amortizes() {
        let pairs: Vec<(u32, u32)> = (0..15u32).map(|v| (v, v + 1)).collect();
        let graph = Graph::from_edge_list(&EdgeList::from_pairs(16, &pairs));
        let plan = tiny_plan();
        let policy = ExecPolicy::serial().reordered(gnnopt_core::ReorderPolicy::Rcm);
        let mut sess = Session::builder(&plan, &graph)
            .policy(policy)
            .fused(false)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let (strategy, seconds) = sess.reorder();
        assert_eq!(strategy, gnnopt_core::ReorderPolicy::Rcm);
        assert!(seconds > 0.0, "preprocessing cost must be measured");

        let bindings = Bindings::new().with("h", Tensor::ones(&[16, 2]));
        let mut reported = Vec::new();
        for _ in 0..3 {
            sess.forward(&bindings).unwrap();
            let s = sess.stats();
            assert_eq!(s.reorder, gnnopt_core::ReorderPolicy::Rcm);
            reported.push(s.reorder_seconds);
        }
        assert_eq!(reported[0], seconds, "stats repeat the build-time figure");
        assert!(
            reported.windows(2).all(|w| w[0] == w[1]),
            "the cost is one-time, not per-step: {reported:?}"
        );

        // An identity session reports no preprocessing at all.
        let mut sess = Session::builder(&plan, &graph)
            .policy(ExecPolicy::serial())
            .fused(false)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        sess.forward(&bindings).unwrap();
        assert_eq!(sess.stats().reorder, gnnopt_core::ReorderPolicy::None);
        assert_eq!(sess.stats().reorder_seconds, 0.0);
    }

    /// The precomputed death lists must cover every kernel-owned node
    /// exactly once (eviction equivalence with the old sweep is
    /// debug-asserted inside `evict_after` on every test run).
    #[test]
    fn death_lists_partition_transient_nodes() {
        let graph = Graph::from_edge_list(&EdgeList::from_pairs(3, &[(0, 1), (1, 2)]));
        let plan = tiny_plan();
        let sess = Session::builder(&plan, &graph)
            .policy(ExecPolicy::serial())
            .fused(false)
            .env(EnvOverrides::Off)
            .build()
            .unwrap();
        let mut seen = HashSet::new();
        for deaths in &sess.kernel_deaths {
            for &n in deaths {
                assert!(seen.insert(n), "node {n} in two death lists");
                assert!(!sess.persistent.contains(&n));
            }
        }
        let owned: usize = plan
            .kernels
            .iter()
            .flat_map(|k| &k.nodes)
            .filter(|n| !sess.persistent.contains(n))
            .count();
        assert_eq!(seen.len(), owned, "every transient node has a death");
    }
}

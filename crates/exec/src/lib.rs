//! CPU reference executor for `gnnopt` execution plans.
//!
//! Executes every IR operator with real numbers so that each compiler
//! rewrite (reorganization, fusion, recomputation) can be validated for
//! *numerical equivalence* against the unoptimized plan, while the
//! analytical counters (latency / IO / memory) come from the plan itself
//! via `gnnopt-sim`.
//!
//! The executor honours the plan's memory discipline: values drop as soon
//! as their last consumer kernel has run, stashed values survive the
//! forward→backward boundary, and recomputed values are *actually* dropped
//! and rebuilt inside the backward kernels (including the edge-softmax
//! rebuild from its stashed max/denominator) — so the recomputation pass
//! is exercised end-to-end, not just accounted for.
//!
//! ```no_run
//! use gnnopt_core::{compile, CompileOptions};
//! use gnnopt_exec::Session;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let ir = gnnopt_core::ir::IrGraph::new();
//! # let graph = gnnopt_graph::Graph::from_edge_list(&gnnopt_graph::EdgeList::from_pairs(2, &[(0,1)]));
//! # let bindings = gnnopt_exec::Bindings::new();
//! let compiled = compile(&ir, false, &CompileOptions::ours())?;
//! let mut sess = Session::new(&compiled.plan, &graph)?;
//! let outputs = sess.forward(&bindings)?;
//! # Ok(())
//! # }
//! ```

mod error;
pub mod kernels;
mod session;

pub use error::ExecError;
pub use session::{Bindings, RunStats, Session};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

//! CPU reference executor for `gnnopt` execution plans.
//!
//! Executes every IR operator with real numbers so that each compiler
//! rewrite (reorganization, fusion, recomputation) can be validated for
//! *numerical equivalence* against the unoptimized plan, while the
//! analytical counters (latency / IO / memory) come from the plan itself
//! via `gnnopt-sim`.
//!
//! The executor honours the plan's memory discipline: values drop as soon
//! as their last consumer kernel has run, stashed values survive the
//! forward→backward boundary, and recomputed values are *actually* dropped
//! and rebuilt inside the backward kernels (including the edge-softmax
//! rebuild from its stashed max/denominator) — so the recomputation pass
//! is exercised end-to-end, not just accounted for.
//!
//! # Constructing sessions
//!
//! [`Session::builder`] is the documented construction path: it makes
//! the execution policy, the fused-execution choice and the treatment of
//! the `GNNOPT_*` environment overrides ([`EnvOverrides`]) explicit. The
//! pre-builder constructors ([`Session::new`], [`Session::with_policy`],
//! [`Session::with_policy_fused`]) are **deprecated** thin shims kept
//! with their historical semantics; see the [`session`](Session) module
//! docs for the migration table.
//!
//! # Thread-parallel backend and the sparse kernel engine
//!
//! Kernels run under an [`gnnopt_core::ExecPolicy`] carried by the
//! compiled plan (`CompileOptions::exec`) or pinned per session via the
//! builder. Gather-style kernels partition the CSR vertex range
//! (edge-balanced under `ExecPolicy::group_workers`, plain vertex counts
//! otherwise) and scatter/elementwise/head kernels partition output
//! rows across `std::thread::scope` workers — the same pattern (and the
//! same pool size, via `gnnopt_tensor::parallel`) as `Tensor::matmul`.
//! Row-wise inner loops dispatch to AVX2-widened bodies at runtime when
//! the host supports them (`GNNOPT_ROWOPS=scalar` pins the scalar path;
//! both produce the same bits — see `gnnopt_tensor::rowops`).
//!
//! **Determinism contract:** reductions either keep their serial
//! accumulation order exactly (bit-identical at any thread count) or
//! re-associate on a *fixed grid* that is a pure function of the problem
//! size — never of the thread count — so every kernel's results are
//! invariant in `GNNOPT_THREADS`. Set `GNNOPT_THREADS=<n>` to override
//! the auto-detected pool size (`GNNOPT_THREADS=1` forces the serial
//! path); see the [`kernels`] module docs for the per-kernel contract,
//! the degree-binned heavy-row dispatch, and the tensor layout
//! convention the chunks slice along.
//!
//! # Fused tiled execution
//!
//! When the plan's policy enables fused execution
//! (`ExecPolicy::fused`, on in the `Ours` preset; override per process
//! with `GNNOPT_FUSED=0|1`, or pin per session via
//! `Session::builder(..).fused(..)`), kernels lowered to
//! `gnnopt_core::KernelProgram`s execute through the tiled interpreter
//! in `fused.rs` instead of node-by-node: kernel-internal values live in
//! per-worker scratch arenas covering one destination-vertex tile at a
//! time, so fused `O(|E|·d)` edge intermediates never materialize —
//! [`RunStats::peak_value_bytes`] genuinely drops, and
//! [`RunStats::scratch_bytes`] / [`RunStats::fused_kernels`] report the
//! realized substitution. Fused results remain bit-identical to the
//! reference path for any tile budget and thread count. Lowering is
//! **total** (see `gnnopt_core::lower`): every kernel of every plan has a
//! program, ops that cannot tile run as whole-graph *full steps* through
//! the same reference dispatch (`refexec`) the node-by-node path uses,
//! and there is no per-kernel fallback.
//!
//! # Runtime reordering
//!
//! When the policy carries a [`gnnopt_core::ReorderPolicy`] other than
//! `None` (or `GNNOPT_REORDER=<strategy|0>` overrides it in
//! [`Session::new`]), the session applies a `gnnopt-reorder` vertex
//! relabeling to the CSR graph **once at build time** and runs every
//! kernel on the relabeled graph: vertex/edge-space bindings are
//! permuted in, user-facing outputs and gradients are inverse-permuted
//! out, so reordering is invisible except through its locality effect.
//! The stable permutation preserves every per-destination reduction
//! order, making forward results *bit-identical* to the identity
//! ordering; backward `BySrc` reductions re-associate, so parameter
//! gradients agree up to floating-point rounding. The one-time cost is
//! reported as [`RunStats::reorder_seconds`] alongside the resolved
//! strategy ([`RunStats::reorder`]). The fused interpreter can
//! additionally bind its workers to bounded edge groups
//! (`ExecPolicy::group_workers`), flattening degree skew without
//! changing results.
//!
//! ```no_run
//! use gnnopt_core::{compile, CompileOptions};
//! use gnnopt_exec::Session;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let ir = gnnopt_core::ir::IrGraph::new();
//! # let graph = gnnopt_graph::Graph::from_edge_list(&gnnopt_graph::EdgeList::from_pairs(2, &[(0,1)]));
//! # let bindings = gnnopt_exec::Bindings::new();
//! let compiled = compile(&ir, false, &CompileOptions::ours())?;
//! let mut sess = Session::builder(&compiled.plan, &graph).build()?;
//! let outputs = sess.forward(&bindings)?;
//! # Ok(())
//! # }
//! ```

mod contain;
mod error;
mod fused;
pub mod kernels;
mod refexec;
mod session;
mod sharded;

pub use error::ExecError;
pub use session::{Bindings, EnvOverrides, RunStats, Session, SessionBuilder};
pub use sharded::{
    ExchangeKind, ExchangeRecord, ShardStrategy, ShardSummary, ShardedSession,
    ShardedSessionBuilder,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

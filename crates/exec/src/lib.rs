//! CPU reference executor for `gnnopt` execution plans.
//!
//! Executes every IR operator with real numbers so that each compiler
//! rewrite (reorganization, fusion, recomputation) can be validated for
//! *numerical equivalence* against the unoptimized plan, while the
//! analytical counters (latency / IO / memory) come from the plan itself
//! via `gnnopt-sim`.
//!
//! The executor honours the plan's memory discipline: values drop as soon
//! as their last consumer kernel has run, stashed values survive the
//! forward→backward boundary, and recomputed values are *actually* dropped
//! and rebuilt inside the backward kernels (including the edge-softmax
//! rebuild from its stashed max/denominator) — so the recomputation pass
//! is exercised end-to-end, not just accounted for.
//!
//! # Thread-parallel backend
//!
//! Kernels run under an [`gnnopt_core::ExecPolicy`] carried by the
//! compiled plan (`CompileOptions::exec`) or pinned per session via
//! [`Session::with_policy`]. Gather-style kernels partition the CSR
//! vertex range and scatter/elementwise/head kernels partition output
//! rows across `std::thread::scope` workers — the same pattern (and the
//! same pool size, via `gnnopt_tensor::parallel`) as `Tensor::matmul`.
//!
//! **Determinism guarantee:** chunk boundaries are a pure function of
//! `(rows, threads)` and no floating-point reduction ever crosses a
//! chunk, so every kernel is *bit-identical* to its serial reference for
//! any thread count. Set `GNNOPT_THREADS=<n>` to override the
//! auto-detected pool size (`GNNOPT_THREADS=1` forces the serial path);
//! see the [`kernels`] module docs for the partitioning scheme per kernel
//! and the tensor layout convention the chunks slice along.
//!
//! # Fused tiled execution
//!
//! When the plan enables `fused_exec` (the `Ours` preset; override per
//! process with `GNNOPT_FUSED=0|1`, or pin per session via
//! [`Session::with_policy_fused`]), kernels lowered to
//! `gnnopt_core::KernelProgram`s execute through the tiled interpreter
//! in `fused.rs` instead of node-by-node: kernel-internal values live in
//! per-worker scratch arenas covering one destination-vertex tile at a
//! time, so fused `O(|E|·d)` edge intermediates never materialize —
//! [`RunStats::peak_value_bytes`] genuinely drops, and
//! [`RunStats::scratch_bytes`] / [`RunStats::fused_kernels`] report the
//! realized substitution. Fused results remain bit-identical to the
//! reference path for any tile budget and thread count; kernels the
//! lowering cannot tile (see `gnnopt_core::lower` for the rules) fall
//! back per kernel.
//!
//! # Runtime reordering
//!
//! When the policy carries a [`gnnopt_core::ReorderPolicy`] other than
//! `None` (or `GNNOPT_REORDER=<strategy|0>` overrides it in
//! [`Session::new`]), the session applies a `gnnopt-reorder` vertex
//! relabeling to the CSR graph **once at build time** and runs every
//! kernel on the relabeled graph: vertex/edge-space bindings are
//! permuted in, user-facing outputs and gradients are inverse-permuted
//! out, so reordering is invisible except through its locality effect.
//! The stable permutation preserves every per-destination reduction
//! order, making forward results *bit-identical* to the identity
//! ordering; backward `BySrc` reductions re-associate, so parameter
//! gradients agree up to floating-point rounding. The one-time cost is
//! reported as [`RunStats::reorder_seconds`] alongside the resolved
//! strategy ([`RunStats::reorder`]). The fused interpreter can
//! additionally bind its workers to bounded edge groups
//! (`ExecPolicy::group_workers`), flattening degree skew without
//! changing results.
//!
//! ```no_run
//! use gnnopt_core::{compile, CompileOptions};
//! use gnnopt_exec::Session;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let ir = gnnopt_core::ir::IrGraph::new();
//! # let graph = gnnopt_graph::Graph::from_edge_list(&gnnopt_graph::EdgeList::from_pairs(2, &[(0,1)]));
//! # let bindings = gnnopt_exec::Bindings::new();
//! let compiled = compile(&ir, false, &CompileOptions::ours())?;
//! let mut sess = Session::new(&compiled.plan, &graph)?;
//! let outputs = sess.forward(&bindings)?;
//! # Ok(())
//! # }
//! ```

mod error;
mod fused;
pub mod kernels;
mod session;

pub use error::ExecError;
pub use session::{Bindings, RunStats, Session};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

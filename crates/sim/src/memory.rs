//! Live-set memory tracking with OOM detection.
//!
//! The planner replays its schedule against a [`MemoryTracker`]: allocate
//! each tensor at its producing step, release it after its last consumer
//! (stashed tensors release only after their final backward use). Peak
//! residency is the paper's "memory consumption" metric, and exceeding the
//! device capacity reproduces the Figure 11 OOM behaviour.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error returned when an allocation exceeds the configured capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already live.
    pub live: u64,
    /// Device capacity.
    pub capacity: u64,
    /// Label of the failing allocation.
    pub label: String,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory allocating {} ({} B) with {} B live of {} B capacity",
            self.label, self.requested, self.live, self.capacity
        )
    }
}

impl Error for MemoryError {}

/// A simulated allocator that tracks live bytes and their peak.
///
/// `capacity = u64::MAX` (from [`MemoryTracker::unbounded`]) never OOMs and
/// is used when only the peak is of interest.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    live: u64,
    peak: u64,
    allocations: HashMap<u64, (u64, String)>,
    next_id: u64,
}

impl MemoryTracker {
    /// Creates a tracker with the given capacity in bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        Self {
            capacity,
            live: 0,
            peak: 0,
            allocations: HashMap::new(),
            next_id: 0,
        }
    }

    /// Creates a tracker that never reports OOM.
    pub fn unbounded() -> Self {
        Self::with_capacity(u64::MAX)
    }

    /// Records an allocation, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the allocation would exceed capacity; the
    /// tracker is left unchanged in that case.
    pub fn alloc(&mut self, bytes: u64, label: &str) -> Result<u64, MemoryError> {
        if self.live.saturating_add(bytes) > self.capacity {
            return Err(MemoryError {
                requested: bytes,
                live: self.live,
                capacity: self.capacity,
                label: label.to_owned(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live += bytes;
        self.peak = self.peak.max(self.live);
        self.allocations.insert(id, (bytes, label.to_owned()));
        Ok(id)
    }

    /// Releases a previous allocation. Unknown handles are ignored (frees
    /// are idempotent so liveness replay code stays simple).
    pub fn free(&mut self, id: u64) {
        if let Some((bytes, _)) = self.allocations.remove(&id) {
            self.live -= bytes;
        }
    }

    /// Bytes currently live.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// Maximum bytes ever live.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut t = MemoryTracker::unbounded();
        let a = t.alloc(100, "a").unwrap();
        let b = t.alloc(50, "b").unwrap();
        t.free(a);
        let _c = t.alloc(20, "c").unwrap();
        assert_eq!(t.peak_bytes(), 150);
        assert_eq!(t.live_bytes(), 70);
        t.free(b);
        assert_eq!(t.live_bytes(), 20);
    }

    #[test]
    fn oom_is_reported_and_state_preserved() {
        let mut t = MemoryTracker::with_capacity(100);
        let _a = t.alloc(80, "big").unwrap();
        let err = t.alloc(40, "overflow").unwrap_err();
        assert_eq!(err.requested, 40);
        assert_eq!(err.live, 80);
        assert_eq!(t.live_bytes(), 80);
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn double_free_is_ignored() {
        let mut t = MemoryTracker::unbounded();
        let a = t.alloc(10, "a").unwrap();
        t.free(a);
        t.free(a);
        assert_eq!(t.live_bytes(), 0);
    }
}

use serde::{Deserialize, Serialize};

/// Aggregated execution statistics for one model pass (forward or
/// forward + backward) — the three axes of the paper's figures plus
/// supporting detail.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Number of kernels launched.
    pub kernels: u64,
    /// Total floating-point operations.
    pub flops: u64,
    /// DRAM bytes read.
    pub bytes_read: u64,
    /// DRAM bytes written.
    pub bytes_written: u64,
    /// Peak simulated memory residency in bytes.
    pub peak_memory: u64,
    /// Bytes stashed across the forward→backward boundary.
    pub stashed_bytes: u64,
    /// Modeled latency in seconds on the target device.
    pub latency: f64,
    /// Wall-clock seconds of the CPU reference execution (0 if not run).
    pub wall_seconds: f64,
    /// CPU worker threads the reference executor ran under when
    /// `wall_seconds` was measured (0 if only evaluated analytically) —
    /// recorded so serial-vs-parallel scaling reports carry their input.
    pub cpu_threads: u64,
}

impl ExecStats {
    /// Total DRAM traffic (the paper's "IO" axis).
    pub fn total_io(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulates another stats record (kernels, FLOPs, IO and latency
    /// add; peak memory takes the max).
    pub fn merge(&mut self, other: &ExecStats) {
        self.kernels += other.kernels;
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.peak_memory = self.peak_memory.max(other.peak_memory);
        self.stashed_bytes += other.stashed_bytes;
        self.latency += other.latency;
        self.wall_seconds += other.wall_seconds;
        self.cpu_threads = self.cpu_threads.max(other.cpu_threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_semantics() {
        let mut a = ExecStats {
            kernels: 2,
            flops: 10,
            bytes_read: 100,
            bytes_written: 20,
            peak_memory: 500,
            stashed_bytes: 5,
            latency: 0.5,
            wall_seconds: 0.1,
            cpu_threads: 1,
        };
        let b = ExecStats {
            kernels: 1,
            flops: 5,
            bytes_read: 50,
            bytes_written: 10,
            peak_memory: 700,
            stashed_bytes: 2,
            latency: 0.25,
            wall_seconds: 0.2,
            cpu_threads: 4,
        };
        a.merge(&b);
        assert_eq!(a.kernels, 3);
        assert_eq!(a.total_io(), 180);
        assert_eq!(a.peak_memory, 700);
        assert!((a.latency - 0.75).abs() < 1e-12);
        assert_eq!(a.cpu_threads, 4, "thread count merges by max");
    }

    #[test]
    fn default_is_zero() {
        let s = ExecStats::default();
        assert_eq!(s.total_io(), 0);
        assert_eq!(s.kernels, 0);
    }
}

//! Kernel execution timelines: an ordered trace of simulated kernel
//! launches with per-phase breakdowns and JSON export.
//!
//! The paper's figures report three scalars per run (latency, IO,
//! memory); a timeline preserves the *composition* of those scalars —
//! which kernels dominate, how the forward/backward split shifts under
//! each optimization — which is what the ablation write-ups in
//! EXPERIMENTS.md cite.

use crate::KernelProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which pass of training a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TracePhase {
    /// Forward (inference) kernels.
    Forward,
    /// Backward (gradient) kernels, including recompute work.
    Backward,
}

impl fmt::Display for TracePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracePhase::Forward => f.write_str("forward"),
            TracePhase::Backward => f.write_str("backward"),
        }
    }
}

/// One simulated kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelEvent {
    /// Kernel label (typically the fused ops' names).
    pub name: String,
    /// Forward or backward.
    pub phase: TracePhase,
    /// Start time in seconds since the trace began.
    pub start: f64,
    /// Modeled duration in seconds.
    pub duration: f64,
    /// Resource profile the duration was derived from.
    pub profile: KernelProfile,
}

/// Aggregates of one phase of a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Number of kernels.
    pub kernels: u64,
    /// Summed modeled latency in seconds.
    pub latency: f64,
    /// Summed FLOPs.
    pub flops: u64,
    /// Summed DRAM traffic (read + written bytes).
    pub io_bytes: u64,
}

/// An ordered trace of simulated kernel launches.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<KernelEvent>,
    cursor: f64,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a kernel at the current cursor and advances it.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        phase: TracePhase,
        profile: KernelProfile,
        duration: f64,
    ) {
        self.events.push(KernelEvent {
            name: name.into(),
            phase,
            start: self.cursor,
            duration,
            profile,
        });
        self.cursor += duration;
    }

    /// All recorded events in launch order.
    pub fn events(&self) -> &[KernelEvent] {
        &self.events
    }

    /// End-to-end modeled latency (the cursor position).
    pub fn total_latency(&self) -> f64 {
        self.cursor
    }

    /// Aggregates for one phase.
    pub fn breakdown(&self, phase: TracePhase) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::default();
        for e in self.events.iter().filter(|e| e.phase == phase) {
            b.kernels += 1;
            b.latency += e.duration;
            b.flops += e.profile.flops;
            b.io_bytes += e.profile.bytes_total();
        }
        b
    }

    /// The `k` longest events, longest first (for "which kernel dominates"
    /// reporting).
    pub fn hotspots(&self, k: usize) -> Vec<&KernelEvent> {
        let mut sorted: Vec<&KernelEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| b.duration.total_cmp(&a.duration));
        sorted.truncate(k);
        sorted
    }

    /// Serializes the trace to JSON (one object with an `events` array).
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails (it cannot
    /// for this type in practice).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace previously produced by [`Timeline::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<34} {:>8} {:>12} {:>12} {:>12}",
            "kernel", "phase", "start (µs)", "dur (µs)", "IO (KiB)"
        )?;
        for e in &self.events {
            writeln!(
                f,
                "{:<34} {:>8} {:>12.2} {:>12.2} {:>12.1}",
                truncate_label(&e.name, 34),
                e.phase.to_string(),
                e.start * 1e6,
                e.duration * 1e6,
                e.profile.bytes_total() as f64 / 1024.0
            )?;
        }
        write!(f, "total: {:.2} µs", self.total_latency() * 1e6)
    }
}

fn truncate_label(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(max - 1)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadMapping;

    fn profile(flops: u64) -> KernelProfile {
        KernelProfile {
            flops,
            bytes_read: 1024,
            bytes_written: 512,
            mapping: ThreadMapping::VertexBalanced,
            atomic_reduction: false,
        }
    }

    #[test]
    fn cursor_advances_and_totals() {
        let mut t = Timeline::new();
        t.record("scatter", TracePhase::Forward, profile(10), 1e-6);
        t.record("gather", TracePhase::Forward, profile(20), 2e-6);
        t.record("scatter_bwd", TracePhase::Backward, profile(30), 3e-6);
        assert_eq!(t.events().len(), 3);
        assert!((t.total_latency() - 6e-6).abs() < 1e-18);
        assert!((t.events()[1].start - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn breakdown_separates_phases() {
        let mut t = Timeline::new();
        t.record("a", TracePhase::Forward, profile(10), 1e-6);
        t.record("b", TracePhase::Backward, profile(20), 5e-6);
        let fwd = t.breakdown(TracePhase::Forward);
        let bwd = t.breakdown(TracePhase::Backward);
        assert_eq!(fwd.kernels, 1);
        assert_eq!(bwd.kernels, 1);
        assert_eq!(fwd.flops, 10);
        assert_eq!(bwd.flops, 20);
        assert!(bwd.latency > fwd.latency);
        assert_eq!(fwd.io_bytes, 1536);
    }

    #[test]
    fn hotspots_sorted_by_duration() {
        let mut t = Timeline::new();
        t.record("short", TracePhase::Forward, profile(1), 1e-6);
        t.record("long", TracePhase::Forward, profile(2), 9e-6);
        t.record("mid", TracePhase::Backward, profile(3), 4e-6);
        let hot = t.hotspots(2);
        assert_eq!(hot[0].name, "long");
        assert_eq!(hot[1].name, "mid");
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let mut t = Timeline::new();
        // Deliberately awkward f64s: exact round-tripping requires
        // serde_json's float_roundtrip feature.
        t.record("k", TracePhase::Backward, profile(7), 2.977258426966292e-5);
        t.record("l", TracePhase::Forward, profile(9), 5.715418803418803e-6);
        let s = t.to_json().unwrap();
        let back = Timeline::from_json(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn display_renders_rows_and_total() {
        let mut t = Timeline::new();
        t.record(
            "very_long_kernel_name_that_overflows_the_column",
            TracePhase::Forward,
            profile(1),
            1e-6,
        );
        let s = t.to_string();
        assert!(s.contains("total:"));
        assert!(s.contains("forward"));
        assert!(s.lines().count() >= 3);
    }
}

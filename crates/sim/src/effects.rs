//! Second-order kernel effects: cache locality and shared-memory
//! occupancy.
//!
//! The baseline roofline in [`crate::Device::kernel_latency`] charges
//! every gather read to DRAM and assumes full occupancy. Two effects the
//! paper discusses qualitatively are modeled here quantitatively:
//!
//! * **Gather locality** (§8, GNNAdvisor/Rabbit-order related work): after
//!   vertex reordering, consecutive edges read nearby feature rows, and a
//!   fraction of gather reads hit in L2 instead of DRAM. The hit rate
//!   comes from `gnnopt-reorder`'s exact LRU model.
//! * **Shared-memory occupancy** (§7.3: "we use shared memory to perform
//!   operator fusion, which introduces extra overhead"): a fused
//!   vertex-balanced kernel buffers per-group intermediates in shared
//!   memory; large footprints cap the number of resident groups per SM
//!   and shrink the latency-hiding head-room.

use serde::{Deserialize, Serialize};

/// Tunable effects applied on top of the base roofline model by
/// [`crate::Device::kernel_latency_with`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEffects {
    /// L2 hit rate of the kernel's gather reads, in `[0, 1]`.
    pub gather_hit_rate: f64,
    /// Fraction of `bytes_read` that are gather (feature-row) reads, in
    /// `[0, 1]`. Topology index reads and dense operands always go to
    /// DRAM.
    pub gather_read_fraction: f64,
    /// Shared-memory footprint per resident thread group, in bytes
    /// (0 = the kernel buffers nothing).
    pub smem_bytes_per_group: u32,
}

impl Default for KernelEffects {
    fn default() -> Self {
        Self {
            gather_hit_rate: 0.0,
            gather_read_fraction: 0.0,
            smem_bytes_per_group: 0,
        }
    }
}

impl KernelEffects {
    /// Effects of a reordered gather: `hit_rate` of the reads covered by
    /// `fraction` are served from L2.
    ///
    /// # Panics
    ///
    /// Panics if either argument lies outside `[0, 1]`.
    pub fn locality(hit_rate: f64, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hit_rate) && (0.0..=1.0).contains(&fraction),
            "hit rate and fraction must lie in [0, 1]"
        );
        Self {
            gather_hit_rate: hit_rate,
            gather_read_fraction: fraction,
            ..Self::default()
        }
    }

    /// Effects of a fused kernel buffering `bytes` of shared memory per
    /// thread group.
    pub fn shared_memory(bytes: u32) -> Self {
        Self {
            smem_bytes_per_group: bytes,
            ..Self::default()
        }
    }

    /// DRAM read bytes remaining after the cache absorbs its share.
    pub fn effective_read_bytes(&self, bytes_read: u64) -> u64 {
        let dram_fraction = 1.0 - self.gather_hit_rate * self.gather_read_fraction;
        (bytes_read as f64 * dram_fraction).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_neutral() {
        let e = KernelEffects::default();
        assert_eq!(e.effective_read_bytes(1 << 20), 1 << 20);
        assert_eq!(e.smem_bytes_per_group, 0);
    }

    #[test]
    fn locality_shrinks_reads_proportionally() {
        let e = KernelEffects::locality(0.5, 0.8);
        // 40 % of reads cached → 60 % remain.
        assert_eq!(e.effective_read_bytes(1000), 600);
    }

    #[test]
    fn perfect_cache_on_all_reads_removes_them() {
        let e = KernelEffects::locality(1.0, 1.0);
        assert_eq!(e.effective_read_bytes(12345), 0);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_out_of_range_hit_rate() {
        let _ = KernelEffects::locality(1.5, 0.5);
    }
}

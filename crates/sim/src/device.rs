use crate::{KernelEffects, KernelProfile, ThreadMapping};
use gnnopt_graph::GraphStats;
use serde::{Deserialize, Serialize};

/// A GPU model: the handful of parameters the roofline latency model needs.
///
/// The two presets mirror the paper's evaluation platforms (§7.1.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Marketing name, used in reports.
    pub name: String,
    /// DRAM capacity in bytes.
    pub memory_bytes: u64,
    /// Sustained DRAM bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Peak fp32 rate in FLOP/s.
    pub flops: f64,
    /// Achievable fraction of peak FLOPs for irregular (graph) kernels.
    pub graph_efficiency: f64,
    /// Achievable fraction of peak FLOPs for dense (GEMM) kernels.
    pub dense_efficiency: f64,
    /// Fixed per-kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// Multiplier on written bytes when a reduction uses atomics.
    pub atomic_penalty: f64,
    /// Number of independent thread groups used for the vertex-balanced
    /// imbalance estimate (≈ SMs × resident warps).
    pub thread_groups: usize,
    /// L2 cache capacity in bytes (absorbs gather reads after reordering;
    /// see [`KernelEffects::locality`]).
    pub l2_bytes: u64,
    /// Shared memory per SM in bytes (caps the resident groups of fused
    /// kernels; see [`KernelEffects::shared_memory`]).
    pub shared_mem_per_sm: u32,
    /// Thread groups resident per SM at full occupancy.
    pub resident_groups_per_sm: u32,
}

impl Device {
    /// NVIDIA GeForce RTX 3090: 24 GB, ~936 GB/s, ~35.6 TFLOP/s fp32,
    /// 6 MB L2, 100 KB shared memory per SM.
    pub fn rtx3090() -> Self {
        Self {
            name: "RTX 3090".to_owned(),
            memory_bytes: 24 * (1 << 30),
            bandwidth: 936.0e9,
            flops: 35.6e12,
            graph_efficiency: 0.12,
            dense_efficiency: 0.65,
            launch_overhead: 4.0e-6,
            atomic_penalty: 2.5,
            thread_groups: 82 * 32,
            l2_bytes: 6 << 20,
            shared_mem_per_sm: 100 << 10,
            resident_groups_per_sm: 32,
        }
    }

    /// NVIDIA GeForce RTX 2080: 8 GB, ~448 GB/s, ~10.1 TFLOP/s fp32,
    /// 4 MB L2, 64 KB shared memory per SM.
    pub fn rtx2080() -> Self {
        Self {
            name: "RTX 2080".to_owned(),
            memory_bytes: 8 * (1 << 30),
            bandwidth: 448.0e9,
            flops: 10.1e12,
            graph_efficiency: 0.12,
            dense_efficiency: 0.65,
            launch_overhead: 4.0e-6,
            atomic_penalty: 2.5,
            thread_groups: 46 * 32,
            l2_bytes: 4 << 20,
            shared_mem_per_sm: 64 << 10,
            resident_groups_per_sm: 32,
        }
    }

    /// The compute and IO halves of the roofline for one kernel, before
    /// launch overhead: `(compute_seconds, io_seconds)`.
    fn latency_parts(&self, profile: &KernelProfile, stats: &GraphStats) -> (f64, f64) {
        let (eff, imbalance) = match profile.mapping {
            ThreadMapping::Dense => (self.dense_efficiency, 1.0),
            ThreadMapping::VertexBalanced => (
                self.graph_efficiency,
                // Cap the modeled slowdown: real kernels oversubscribe
                // groups, so extreme skew saturates rather than diverges.
                stats.vertex_balanced_imbalance(self.thread_groups).min(8.0),
            ),
            ThreadMapping::EdgeBalanced => (self.graph_efficiency, 1.0),
        };
        let compute = profile.flops as f64 / (self.flops * eff) * imbalance;
        let write_factor = if profile.atomic_reduction {
            self.atomic_penalty
        } else {
            1.0
        };
        let io = (profile.bytes_read as f64 + profile.bytes_written as f64 * write_factor)
            / self.bandwidth;
        (compute, io)
    }

    /// Roofline latency of one kernel on this device, in seconds:
    ///
    /// `launch + max(compute_time × imbalance, io_time × atomic_factor)`
    ///
    /// where `imbalance` comes from the degree distribution for
    /// vertex-balanced kernels (idle thread groups on skewed graphs) and
    /// `atomic_factor` inflates written bytes for edge-balanced reductions.
    pub fn kernel_latency(&self, profile: &KernelProfile, stats: &GraphStats) -> f64 {
        let (compute, io) = self.latency_parts(profile, stats);
        self.launch_overhead + compute.max(io)
    }

    /// Roofline latency with second-order [`KernelEffects`] applied:
    /// cached gather reads shrink the IO term; a shared-memory footprint
    /// below full occupancy inflates the compute term (less latency
    /// hiding).
    pub fn kernel_latency_with(
        &self,
        profile: &KernelProfile,
        stats: &GraphStats,
        effects: &KernelEffects,
    ) -> f64 {
        let adjusted = KernelProfile {
            bytes_read: effects.effective_read_bytes(profile.bytes_read),
            ..*profile
        };
        let (compute, io) = self.latency_parts(&adjusted, stats);
        let occ = self.occupancy(effects.smem_bytes_per_group);
        self.launch_overhead + (compute / occ).max(io)
    }

    /// Occupancy factor in `(0, 1]` for a kernel whose thread groups each
    /// hold `smem_bytes_per_group` bytes of shared memory: the fraction of
    /// the full-occupancy resident-group budget that actually fits.
    pub fn occupancy(&self, smem_bytes_per_group: u32) -> f64 {
        if smem_bytes_per_group == 0 {
            return 1.0;
        }
        let resident = (self.shared_mem_per_sm / smem_bytes_per_group)
            .min(self.resident_groups_per_sm)
            .max(1);
        resident as f64 / self.resident_groups_per_sm as f64
    }

    /// True when one thread group's shared-memory footprint fits an SM at
    /// all — if not, the fused kernel cannot launch and the planner must
    /// tile or split it.
    pub fn fits_shared_memory(&self, smem_bytes_per_group: u32) -> bool {
        smem_bytes_per_group <= self.shared_mem_per_sm
    }

    /// Memory usable by tensors: 90 % of nominal capacity (CUDA context,
    /// allocator fragmentation and framework workspace take the rest).
    pub fn usable_memory(&self) -> u64 {
        self.memory_bytes / 10 * 9
    }

    /// Latency of a whole kernel sequence.
    pub fn plan_latency<'a>(
        &self,
        profiles: impl IntoIterator<Item = &'a KernelProfile>,
        stats: &GraphStats,
    ) -> f64 {
        profiles
            .into_iter()
            .map(|p| self.kernel_latency(p, stats))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stats() -> GraphStats {
        GraphStats::synthesize_power_law(1024, 16.0, 0.0)
    }

    fn skewed_stats() -> GraphStats {
        GraphStats::synthesize_power_law(1024, 16.0, 1.5)
    }

    fn graph_profile(mapping: ThreadMapping) -> KernelProfile {
        KernelProfile {
            flops: 1 << 24,
            bytes_read: 1 << 26,
            bytes_written: 1 << 24,
            mapping,
            atomic_reduction: false,
        }
    }

    #[test]
    fn presets_are_ordered() {
        let (a, b) = (Device::rtx3090(), Device::rtx2080());
        assert!(a.memory_bytes > b.memory_bytes);
        assert!(a.bandwidth > b.bandwidth);
        assert!(a.flops > b.flops);
        assert!(a.l2_bytes > b.l2_bytes);
        assert!(a.shared_mem_per_sm > b.shared_mem_per_sm);
    }

    #[test]
    fn launch_overhead_floors_latency() {
        let d = Device::rtx3090();
        let p = KernelProfile::dense(0, 0, 0);
        assert!(d.kernel_latency(&p, &uniform_stats()) >= d.launch_overhead);
    }

    #[test]
    fn skew_slows_vertex_balanced_only() {
        let d = Device::rtx3090();
        // Make the kernel compute-bound so imbalance dominates.
        let p = KernelProfile {
            flops: 1 << 34,
            ..graph_profile(ThreadMapping::VertexBalanced)
        };
        let flat = d.kernel_latency(&p, &uniform_stats());
        let skew = d.kernel_latency(&p, &skewed_stats());
        assert!(skew > flat * 1.2, "skew {skew} should exceed flat {flat}");

        let pe = KernelProfile {
            flops: 1 << 34,
            ..graph_profile(ThreadMapping::EdgeBalanced)
        };
        let flat_e = d.kernel_latency(&pe, &uniform_stats());
        let skew_e = d.kernel_latency(&pe, &skewed_stats());
        assert!((flat_e - skew_e).abs() < 1e-12);
    }

    #[test]
    fn atomic_penalty_applies_to_writes() {
        let d = Device::rtx3090();
        let mut p = graph_profile(ThreadMapping::EdgeBalanced);
        // IO-bound by construction.
        p.bytes_written = 1 << 30;
        let base = d.kernel_latency(&p, &uniform_stats());
        p.atomic_reduction = true;
        let with_atomics = d.kernel_latency(&p, &uniform_stats());
        assert!(with_atomics > base * 1.5);
    }

    #[test]
    fn fewer_kernels_is_cheaper_at_same_io() {
        // Fusion removes launches: 4 kernels vs 1 with identical totals.
        let d = Device::rtx3090();
        let small = KernelProfile::dense(1 << 10, 1 << 12, 1 << 12);
        let mut fused = small;
        for _ in 0..3 {
            fused.fuse_with(&small);
        }
        let stats = uniform_stats();
        let separate: f64 = d.plan_latency([&small, &small, &small, &small], &stats);
        let fused_t = d.kernel_latency(&fused, &stats);
        assert!(fused_t < separate);
    }

    #[test]
    fn neutral_effects_match_base_latency() {
        let d = Device::rtx3090();
        let p = graph_profile(ThreadMapping::VertexBalanced);
        let stats = skewed_stats();
        let base = d.kernel_latency(&p, &stats);
        let with = d.kernel_latency_with(&p, &stats, &KernelEffects::default());
        assert!((base - with).abs() < 1e-15);
    }

    #[test]
    fn cache_hits_speed_up_io_bound_kernels() {
        let d = Device::rtx3090();
        // IO-bound gather kernel: 1 GiB of reads, negligible compute.
        let p = KernelProfile {
            flops: 1 << 10,
            bytes_read: 1 << 30,
            bytes_written: 1 << 20,
            mapping: ThreadMapping::VertexBalanced,
            atomic_reduction: false,
        };
        let stats = uniform_stats();
        let base = d.kernel_latency(&p, &stats);
        let cached = d.kernel_latency_with(&p, &stats, &KernelEffects::locality(0.8, 0.9));
        assert!(
            cached < base * 0.5,
            "72 % cached reads should at least halve an IO-bound kernel: {base} -> {cached}"
        );
    }

    #[test]
    fn occupancy_decreases_with_footprint() {
        let d = Device::rtx3090();
        assert_eq!(d.occupancy(0), 1.0);
        let small = d.occupancy(1 << 10);
        let large = d.occupancy(32 << 10);
        assert!(small >= large);
        assert!(large > 0.0);
        assert!(d.fits_shared_memory(d.shared_mem_per_sm));
        assert!(!d.fits_shared_memory(d.shared_mem_per_sm + 1));
    }

    #[test]
    fn shared_memory_pressure_slows_compute_bound_kernels() {
        let d = Device::rtx2080();
        // Compute-bound fused kernel.
        let p = KernelProfile {
            flops: 1 << 36,
            bytes_read: 1 << 20,
            bytes_written: 1 << 20,
            mapping: ThreadMapping::VertexBalanced,
            atomic_reduction: false,
        };
        let stats = uniform_stats();
        let free = d.kernel_latency_with(&p, &stats, &KernelEffects::default());
        // 16 KB per group on a 64 KB SM → 4 resident groups of 32.
        let pressured = d.kernel_latency_with(&p, &stats, &KernelEffects::shared_memory(16 << 10));
        assert!(
            pressured > free * 4.0,
            "occupancy 4/32 should slow compute ≥ 4×: {free} -> {pressured}"
        );
    }
}

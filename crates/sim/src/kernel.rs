use serde::{Deserialize, Serialize};

/// The thread-mapping scheme of a (possibly fused) graph kernel — the
/// central lever of the paper's §5.
///
/// * `VertexBalanced` binds one thread group per destination (or source)
///   vertex; reductions stay inside the group (no atomics) but skewed
///   degree distributions leave groups idle.
/// * `EdgeBalanced` binds threads to edges; work is perfectly balanced but
///   vertex-space reductions require cross-thread atomics.
/// * `Dense` marks kernels with no graph indirection (e.g. linear
///   projections lowered to GEMM), which are modeled at full efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadMapping {
    /// One thread group per vertex; sequential in-group reduction.
    VertexBalanced,
    /// One thread (group) per edge; reductions via atomics.
    EdgeBalanced,
    /// Dense tensor kernel (GEMM/elementwise on contiguous data).
    Dense,
}

impl ThreadMapping {
    /// True for mappings that iterate graph structure.
    pub fn is_graph(self) -> bool {
        !matches!(self, ThreadMapping::Dense)
    }
}

/// Resource profile of one launched kernel, produced by the planner's cost
/// model and consumed by [`crate::Device::kernel_latency`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes read from DRAM (external inputs + graph topology).
    pub bytes_read: u64,
    /// Bytes written to DRAM (external outputs + stashed auxiliaries).
    pub bytes_written: u64,
    /// Thread mapping chosen for the kernel.
    pub mapping: ThreadMapping,
    /// True when a vertex-space reduction runs under [`ThreadMapping::EdgeBalanced`]
    /// and therefore pays the atomic penalty on its written bytes.
    pub atomic_reduction: bool,
}

impl KernelProfile {
    /// A dense kernel profile (no graph indirection, no atomics).
    pub fn dense(flops: u64, bytes_read: u64, bytes_written: u64) -> Self {
        Self {
            flops,
            bytes_read,
            bytes_written,
            mapping: ThreadMapping::Dense,
            atomic_reduction: false,
        }
    }

    /// Total DRAM traffic.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Merges another profile into this one, as kernel fusion does: FLOPs
    /// add, IO adds (the *caller* is responsible for having already removed
    /// internalized tensors from the operands' IO), mapping must agree.
    ///
    /// # Panics
    ///
    /// Panics if the mappings disagree — fusing kernels with diverged
    /// thread mappings is exactly what the paper shows to be impossible.
    pub fn fuse_with(&mut self, other: &KernelProfile) {
        assert_eq!(
            self.mapping, other.mapping,
            "cannot fuse kernels with diverged thread mappings"
        );
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.atomic_reduction |= other.atomic_reduction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_profile_defaults() {
        let p = KernelProfile::dense(100, 64, 32);
        assert_eq!(p.mapping, ThreadMapping::Dense);
        assert!(!p.atomic_reduction);
        assert_eq!(p.bytes_total(), 96);
    }

    #[test]
    fn fuse_adds_resources() {
        let mut a = KernelProfile {
            flops: 10,
            bytes_read: 100,
            bytes_written: 50,
            mapping: ThreadMapping::VertexBalanced,
            atomic_reduction: false,
        };
        let b = KernelProfile {
            flops: 5,
            bytes_read: 10,
            bytes_written: 5,
            mapping: ThreadMapping::VertexBalanced,
            atomic_reduction: true,
        };
        a.fuse_with(&b);
        assert_eq!(a.flops, 15);
        assert_eq!(a.bytes_total(), 165);
        assert!(a.atomic_reduction);
    }

    #[test]
    #[should_panic(expected = "diverged thread mappings")]
    fn fuse_rejects_mismatched_mapping() {
        let mut a = KernelProfile::dense(1, 1, 1);
        let b = KernelProfile {
            mapping: ThreadMapping::EdgeBalanced,
            ..KernelProfile::dense(1, 1, 1)
        };
        a.fuse_with(&b);
    }

    #[test]
    fn graph_mapping_predicate() {
        assert!(ThreadMapping::VertexBalanced.is_graph());
        assert!(ThreadMapping::EdgeBalanced.is_graph());
        assert!(!ThreadMapping::Dense.is_graph());
    }
}

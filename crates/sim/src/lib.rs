//! Analytical GPU execution model for the `gnnopt` optimizer.
//!
//! The paper evaluates its three techniques on NVIDIA RTX 3090/2080 GPUs.
//! No GPU is available in this environment, so this crate models the three
//! quantities the paper's figures actually report — **latency**, **DRAM
//! IO**, and **peak memory** — from first principles:
//!
//! * a [`Device`] carries bandwidth, FLOP rate, memory capacity, a kernel
//!   launch overhead, and an atomic-update penalty;
//! * a [`KernelProfile`] describes one (possibly fused) kernel: FLOPs,
//!   bytes read/written, the [`ThreadMapping`] chosen by the fusion pass,
//!   and whether reductions require atomics;
//! * [`Device::kernel_latency`] combines them with the degree-distribution
//!   imbalance from [`gnnopt_graph::GraphStats`] (a vertex-balanced kernel
//!   on a skewed graph is slowed by its most loaded thread group, §5 of the
//!   paper);
//! * a [`MemoryTracker`] replays a plan's allocation schedule to obtain
//!   peak residency and detect OOM — which is how the Figure 11
//!   "runs-on-2080 vs needs-3090" experiment is reproduced.
//!
//! The model is deliberately simple (roofline + launch overhead + load
//! imbalance + atomic penalty); DESIGN.md §2 argues why this preserves the
//! paper's measured *shapes*. Two optional second-order effects refine it
//! when callers can quantify them: [`KernelEffects`] models L2-cached
//! gather reads (after `gnnopt-reorder` reordering) and shared-memory
//! occupancy pressure of fused kernels; a [`Timeline`] records per-kernel
//! launch traces with phase breakdowns and JSON export.

mod device;
mod effects;
mod kernel;
mod memory;
mod stats;
mod timeline;

pub use device::Device;
pub use effects::KernelEffects;
pub use kernel::{KernelProfile, ThreadMapping};
pub use memory::{MemoryError, MemoryTracker};
pub use stats::ExecStats;
pub use timeline::{KernelEvent, PhaseBreakdown, Timeline, TracePhase};

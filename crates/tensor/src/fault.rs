//! Deterministic fault injection (failpoints) for the session runtime.
//!
//! A *failpoint* is a named site in the runtime that can be armed to
//! misbehave on a chosen hit: panic like a buggy kernel, return a typed
//! error, emit a non-finite value, corrupt an exchange buffer, or
//! pretend the buffer pool is exhausted. Chaos tests use them to prove
//! the containment story (a step returns `Err`, never aborts, never
//! returns wrong data) without depending on real hardware faults.
//!
//! # Spec grammar
//!
//! The plan is a comma-separated list of `site:action` rules, each with
//! an optional trigger suffix:
//!
//! | spec                | fires                                   |
//! |---------------------|-----------------------------------------|
//! | `site:action`       | on every hit of `site`                  |
//! | `site:action@N`     | on exactly the `N`-th hit (1-based)      |
//! | `site:action%K`     | on every `K`-th hit                     |
//!
//! Actions: `panic`, `error`, `nan`, `corrupt`, `exhaust`. Sites wired
//! by `gnnopt-exec` and this crate: `refexec` (reference kernel
//! dispatch), `fused.launch` (fused interpreter program launch),
//! `worker` (inside every `std::thread::scope` worker body),
//! `pool.take` (buffer-pool takes; every action degrades to a forced
//! pool miss — see below), `exchange` (sharded halo exchange staging).
//!
//! Triggering is **deterministic**: each rule carries an atomic hit
//! counter, so for a fixed plan and a fixed execution schedule the same
//! hit fires every run — no RNG, no time dependence. (Under
//! multi-threaded workers the counter is still exact; *which* worker
//! observes the firing hit may vary, which never matters for
//! containment semantics.)
//!
//! # Zero cost when unset
//!
//! [`check`] first reads one relaxed `AtomicBool`; with no plan
//! installed that is the entire cost, so production paths keep the
//! failpoints compiled in. Plans come from the `GNNOPT_FAILPOINTS`
//! environment variable (parsed loudly by the session builders) or
//! programmatically via [`install`] / [`FaultGuard`] in tests.
//!
//! # Site/action support
//!
//! `pool.take` is special: a pool take returns a buffer, not a
//! `Result`, and pool exhaustion must *degrade* (heap fallback, counted
//! in the pool's miss counter), not fail. Every action at `pool.take`
//! therefore behaves as `exhaust`. All other sites honor their action
//! literally; unsupported combinations (e.g. `corrupt` at `refexec`)
//! fall back to the site's loudest supported behavior at the wiring
//! site, documented there.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Environment variable holding the failpoint plan. Parsed by the
/// session builders with [`install_from_env`]; garbage is a loud build
/// error, never silently ignored.
pub const FAILPOINTS_ENV_VAR: &str = "GNNOPT_FAILPOINTS";

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (exercises panic containment).
    Panic,
    /// Return a typed injected error from the site.
    Error,
    /// Inject a non-finite value into the site's output (exercises the
    /// numeric guard).
    Nan,
    /// Corrupt the site's staging buffer (exercises exchange
    /// validation).
    Corrupt,
    /// Pretend a resource is exhausted (exercises graceful
    /// degradation).
    Exhaust,
}

impl FaultAction {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(Self::Panic),
            "error" => Ok(Self::Error),
            "nan" => Ok(Self::Nan),
            "corrupt" => Ok(Self::Corrupt),
            "exhaust" => Ok(Self::Exhaust),
            other => Err(format!(
                "unknown fault action '{other}' (expected panic|error|nan|corrupt|exhaust)"
            )),
        }
    }

    /// Lowercase name, matching the spec grammar.
    pub fn name(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::Error => "error",
            Self::Nan => "nan",
            Self::Corrupt => "corrupt",
            Self::Exhaust => "exhaust",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Fire on every hit.
    Every,
    /// Fire on exactly the n-th hit (1-based), once.
    Once(u64),
    /// Fire on every k-th hit.
    Modulo(u64),
}

struct Rule {
    site: String,
    action: FaultAction,
    trigger: Trigger,
    hits: AtomicU64,
}

/// Fast-path arm flag: one relaxed load decides "no failpoints" without
/// touching the plan lock.
static ARMED: AtomicBool = AtomicBool::new(false);

static PLAN: RwLock<Vec<Rule>> = RwLock::new(Vec::new());

/// True when a non-empty failpoint plan is installed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Evaluates the failpoint at `site`: advances every matching rule's
/// hit counter and returns the action of the first rule that fires.
/// One relaxed atomic load when no plan is installed.
#[inline]
pub fn check(site: &str) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_armed(site)
}

#[cold]
fn check_armed(site: &str) -> Option<FaultAction> {
    let plan = PLAN.read().expect("failpoint plan lock poisoned");
    let mut fired = None;
    for rule in plan.iter().filter(|r| r.site == site) {
        let n = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match rule.trigger {
            Trigger::Every => true,
            Trigger::Once(k) => n == k,
            Trigger::Modulo(k) => n.is_multiple_of(k),
        };
        if fire && fired.is_none() {
            fired = Some(rule.action);
        }
    }
    fired
}

/// The canonical payload of an injected panic, so tests can recognize
/// it in `ExecError::KernelPanic { payload, .. }`.
pub fn injected_panic_message(site: &str) -> String {
    format!("injected fault: panic at failpoint '{site}'")
}

fn parse_rule(item: &str) -> Result<Rule, String> {
    let (site, rest) = item
        .split_once(':')
        .ok_or_else(|| format!("failpoint '{item}' is missing ':' (expected site:action)"))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(format!("failpoint '{item}' has an empty site name"));
    }
    let rest = rest.trim();
    let (action, trigger) = if let Some((a, n)) = rest.split_once('@') {
        let n: u64 = n
            .trim()
            .parse()
            .map_err(|_| format!("failpoint '{item}': '@' wants a positive integer hit index"))?;
        if n == 0 {
            return Err(format!("failpoint '{item}': hit indices are 1-based"));
        }
        (FaultAction::parse(a.trim())?, Trigger::Once(n))
    } else if let Some((a, k)) = rest.split_once('%') {
        let k: u64 = k
            .trim()
            .parse()
            .map_err(|_| format!("failpoint '{item}': '%' wants a positive integer period"))?;
        if k == 0 {
            return Err(format!("failpoint '{item}': period must be >= 1"));
        }
        (FaultAction::parse(a.trim())?, Trigger::Modulo(k))
    } else {
        (FaultAction::parse(rest)?, Trigger::Every)
    };
    Ok(Rule {
        site: site.to_string(),
        action,
        trigger,
        hits: AtomicU64::new(0),
    })
}

/// Parses and installs a failpoint plan, replacing any existing plan.
/// An empty (or all-whitespace) spec clears the plan. Errors name the
/// offending rule; nothing is installed on error.
pub fn install(spec: &str) -> Result<(), String> {
    let mut rules = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        rules.push(parse_rule(item)?);
    }
    let mut plan = PLAN.write().expect("failpoint plan lock poisoned");
    ARMED.store(!rules.is_empty(), Ordering::Relaxed);
    *plan = rules;
    Ok(())
}

/// Removes every installed failpoint and disarms the fast path.
pub fn clear() {
    let mut plan = PLAN.write().expect("failpoint plan lock poisoned");
    ARMED.store(false, Ordering::Relaxed);
    plan.clear();
}

/// Installs the plan from [`FAILPOINTS_ENV_VAR`] if the variable is
/// set. Returns `Ok(true)` when a plan was installed, `Ok(false)` when
/// the variable is unset or empty (existing plan untouched), and the
/// parse error otherwise.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var(FAILPOINTS_ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => install(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// RAII plan for tests: installs on construction, clears on drop (panic
/// included), so a failing chaos case never leaks its plan into the
/// next test. Fault state is process-global — tests that install plans
/// must serialize on a shared mutex.
pub struct FaultGuard(());

impl FaultGuard {
    /// Installs `spec`, replacing any existing plan.
    ///
    /// # Errors
    ///
    /// Returns the parse error verbatim; nothing is installed.
    pub fn install(spec: &str) -> Result<Self, String> {
        install(spec)?;
        Ok(Self(()))
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Serializes this crate's unit tests that mutate the process-global
/// plan (all unit tests share one process).
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn unarmed_is_none() {
        let _l = lock();
        clear();
        assert!(!armed());
        assert_eq!(check("refexec"), None);
    }

    #[test]
    fn every_once_and_modulo_triggers() {
        let _l = lock();
        {
            let _g = FaultGuard::install("a:panic,b:error@2,c:nan%3").unwrap();
            assert!(armed());
            assert_eq!(check("a"), Some(FaultAction::Panic));
            assert_eq!(check("a"), Some(FaultAction::Panic));
            assert_eq!(check("b"), None);
            assert_eq!(check("b"), Some(FaultAction::Error));
            assert_eq!(check("b"), None, "@N fires exactly once");
            assert_eq!(check("c"), None);
            assert_eq!(check("c"), None);
            assert_eq!(check("c"), Some(FaultAction::Nan));
            assert_eq!(check("c"), None);
            assert_eq!(check("unwired"), None);
        }
        assert!(!armed(), "guard drop disarms");
    }

    #[test]
    fn garbage_specs_are_loud() {
        let _l = lock();
        for bad in [
            "nocolon",
            "site:",
            ":panic",
            "site:explode",
            "site:panic@0",
            "site:panic@x",
            "site:nan%0",
        ] {
            assert!(install(bad).is_err(), "spec '{bad}' must be rejected");
        }
        assert!(!armed(), "failed install leaves the plan disarmed");
    }

    #[test]
    fn empty_spec_clears() {
        let _l = lock();
        install("a:panic").unwrap();
        assert!(armed());
        install("  ").unwrap();
        assert!(!armed());
    }
}

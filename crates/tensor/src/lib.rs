//! Dense `f32` tensor substrate for the `gnnopt` GNN computational-graph
//! optimizer.
//!
//! The paper's operators move per-vertex and per-edge *feature matrices*
//! around, so everything in this crate is oriented around row-major 2-D
//! matrices (`[rows, cols]`), with a general n-d shape kept for forward
//! compatibility. The crate deliberately has no external array dependency:
//! the executor (`gnnopt-exec`) needs full control over allocation so the
//! simulated memory counters stay truthful.
//!
//! # Example
//!
//! ```
//! use gnnopt_tensor::Tensor;
//!
//! # fn main() -> Result<(), gnnopt_tensor::TensorError> {
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok(())
//! # }
//! ```

mod elementwise;
mod error;
pub mod fault;
pub mod gemm;
mod init;
mod linalg;
pub mod parallel;
pub mod pool;
mod reduce;
pub mod rowops;
mod tensor;

pub use error::TensorError;
pub use gemm::GemmKernel;
pub use init::XavierInit;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Absolute tolerance used by [`Tensor::allclose`] and the test oracles.
pub const DEFAULT_ATOL: f32 = 1e-4;

/// Relative tolerance used by [`Tensor::allclose`] and the test oracles.
pub const DEFAULT_RTOL: f32 = 1e-4;

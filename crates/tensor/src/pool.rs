//! A global, thread-scoped buffer pool: the runtime half of the static
//! memory planner.
//!
//! The planner (`gnnopt-core::memplan`) proves at session build which
//! buffers a step needs and for how long; this module is the mechanism
//! that actually recycles them. Buffers are plain `Vec`s keyed by
//! **capacity** in a [`BTreeMap`] free list, granted best-fit (smallest
//! capacity ≥ request) and returned whole — a region is never split, so
//! a pooled buffer corresponds 1:1 to a planned arena region.
//!
//! # Activation is per thread
//!
//! The pool only intercepts allocation on threads that are inside a
//! [`scope_enter`]/[`scope_exit`] bracket (sessions bracket every step
//! when their arena is on). Worker threads spawned by kernels never
//! enter a scope, so their temporaries take the ordinary heap path —
//! the zero-allocation steady-state guarantee is a property of the
//! *serial* executor, which is exactly the configuration the counting
//! allocator test pins. With no active scope anywhere (for example
//! `GNNOPT_ARENA=0`) every function here degenerates to the plain
//! `Vec` behavior, byte for byte.
//!
//! # Why steady state reaches a fixed point
//!
//! A session step performs a deterministic sequence of buffer requests
//! and returns. After one warmup step the pool holds every buffer the
//! sequence needs (the session additionally pre-seeds it with the
//! planner's regions at build), the `BTreeMap` has a node for every
//! capacity class that will ever exist (empty buckets are kept, never
//! removed), and each bucket `Vec` was born with [`BUCKET_SLACK`]
//! slots of headroom — enough that the return wave of a reset never
//! forces the bucket itself to reallocate. From then on every request
//! is served by `pop` and every return by `push` within existing
//! capacity: zero calls into the global allocator.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Mutex;

thread_local! {
    static ACTIVE: Cell<u32> = const { Cell::new(0) };
}

/// Activates the pool on the current thread (re-entrant; each call must
/// be matched by a [`scope_exit`]).
pub fn scope_enter() {
    ACTIVE.with(|a| a.set(a.get() + 1));
}

/// Deactivates the innermost pool scope on the current thread.
pub fn scope_exit() {
    ACTIVE.with(|a| a.set(a.get().saturating_sub(1)));
}

/// True when the current thread is inside a pool scope.
pub fn active() -> bool {
    ACTIVE.with(|a| a.get() > 0)
}

/// RAII wrapper around [`scope_enter`]/[`scope_exit`]: activates the
/// pool (when `on`) for the guard's lifetime, surviving early returns
/// and panics.
pub struct ScopeGuard {
    on: bool,
}

impl ScopeGuard {
    /// Enters a pool scope when `on`; a `ScopeGuard::new(false)` is a
    /// no-op, so callers can bracket unconditionally.
    pub fn new(on: bool) -> Self {
        if on {
            scope_enter();
        }
        Self { on }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.on {
            scope_exit();
        }
    }
}

struct PoolInner {
    f32s: BTreeMap<usize, Vec<Vec<f32>>>,
    u32s: BTreeMap<usize, Vec<Vec<u32>>>,
    shapes: BTreeMap<usize, Vec<Vec<usize>>>,
}

/// Slots pre-reserved in every bucket `Vec` at creation. Bucket
/// occupancy peaks during a session's reset (the return wave of the
/// previous step), which first happens one step *after* the bucket is
/// created — without slack the bucket itself would reallocate there,
/// breaking the warm-step zero-allocation guarantee. A class parking
/// more than this many buffers simultaneously grows its bucket once
/// and then stays at the new fixed point.
const BUCKET_SLACK: usize = 16;

fn new_bucket<T>() -> Vec<Vec<T>> {
    Vec::with_capacity(BUCKET_SLACK)
}

static POOL: Mutex<PoolInner> = Mutex::new(PoolInner {
    f32s: BTreeMap::new(),
    u32s: BTreeMap::new(),
    shapes: BTreeMap::new(),
});

macro_rules! pool_take {
    ($field:ident, $min:expr) => {{
        let min = $min;
        if min == 0 || !active() {
            return Vec::with_capacity(min);
        }
        let mut pool = POOL.lock().expect("buffer pool poisoned");
        // Best fit: the smallest capacity class that satisfies the
        // request. Empty buckets are skipped but deliberately kept in
        // the map so the tree reaches a structural fixed point.
        if let Some((_, bucket)) = pool.$field.range_mut(min..).find(|(_, b)| !b.is_empty()) {
            let mut v = bucket.pop().expect("bucket checked non-empty");
            v.clear();
            return v;
        }
        // Miss: materialize the class's bucket node *now*, so the
        // buffer's eventual return (often a whole step later, at the
        // next reset's return wave) finds the node in place instead of
        // allocating one inside a warmed step.
        pool.$field.entry(min).or_insert_with(new_bucket);
        drop(pool);
        Vec::with_capacity(min)
    }};
}

macro_rules! pool_put {
    ($field:ident, $v:expr) => {{
        let v = $v;
        if v.capacity() == 0 || !active() {
            return;
        }
        let cap = v.capacity();
        POOL.lock()
            .expect("buffer pool poisoned")
            .$field
            .entry(cap)
            .or_insert_with(new_bucket)
            .push(v);
    }};
}

/// Takes an empty `Vec<f32>` with capacity ≥ `min` from the pool
/// (freshly allocated on a miss or outside a scope).
pub fn take_f32(min: usize) -> Vec<f32> {
    pool_take!(f32s, min)
}

/// Returns a `Vec<f32>` to the pool (dropped outside a scope).
pub fn put_f32(v: Vec<f32>) {
    pool_put!(f32s, v)
}

/// Takes an empty `Vec<u32>` with capacity ≥ `min` from the pool.
pub fn take_u32(min: usize) -> Vec<u32> {
    pool_take!(u32s, min)
}

/// Returns a `Vec<u32>` to the pool.
pub fn put_u32(v: Vec<u32>) {
    pool_put!(u32s, v)
}

/// Takes an empty shape vector (`Vec<usize>`) with capacity ≥ `min`.
pub fn take_shape(min: usize) -> Vec<usize> {
    pool_take!(shapes, min)
}

/// Returns a shape vector to the pool.
pub fn put_shape(v: Vec<usize>) {
    pool_put!(shapes, v)
}

/// Pre-seeds the pool with an `f32` buffer of exactly `elems` capacity.
///
/// Sessions call this at build for every planned arena region so the
/// very first step already finds its store buffers (activation is not
/// required: seeding is an explicit request, not an interception).
pub fn seed_f32(elems: usize) {
    if elems == 0 {
        return;
    }
    POOL.lock()
        .expect("buffer pool poisoned")
        .f32s
        .entry(elems)
        .or_insert_with(new_bucket)
        .push(Vec::with_capacity(elems));
}

/// Pre-seeds the pool with a shape vector of `rank` capacity.
///
/// Shape vectors are tiny, but a take miss is still a heap allocation;
/// sessions seed one per planned region (plus slack for the auxiliary
/// stashes) so the shape bucket starts at its fixed point instead of
/// reaching it lazily over the first steps.
pub fn seed_shape(rank: usize) {
    if rank == 0 {
        return;
    }
    POOL.lock()
        .expect("buffer pool poisoned")
        .shapes
        .entry(rank)
        .or_insert_with(new_bucket)
        .push(Vec::with_capacity(rank));
}

/// Frees every pooled buffer (bucket nodes included).
///
/// Sessions with an arena trim on drop so long test runs that build
/// hundreds of sessions do not accumulate every session's working set.
/// Concurrent sessions merely lose warmth: their next step re-allocates
/// misses through the ordinary heap path.
pub fn trim() {
    let mut pool = POOL.lock().expect("buffer pool poisoned");
    pool.f32s = BTreeMap::new();
    pool.u32s = BTreeMap::new();
    pool.shapes = BTreeMap::new();
}

/// Bucket occupancy of each free list as `(capacity, parked buffers)`
/// pairs in ascending capacity order — `(f32s, u32s, shapes)`.
/// Diagnostics only.
#[allow(clippy::type_complexity)]
#[must_use]
pub fn occupancy() -> (
    Vec<(usize, usize)>,
    Vec<(usize, usize)>,
    Vec<(usize, usize)>,
) {
    let pool = POOL.lock().expect("buffer pool poisoned");
    let count = |m: &BTreeMap<usize, Vec<Vec<f32>>>| -> Vec<(usize, usize)> {
        m.iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(&c, b)| (c, b.len()))
            .collect()
    };
    let f = count(&pool.f32s);
    let u = pool
        .u32s
        .iter()
        .filter(|(_, b)| !b.is_empty())
        .map(|(&c, b)| (c, b.len()))
        .collect();
    let s = pool
        .shapes
        .iter()
        .filter(|(_, b)| !b.is_empty())
        .map(|(&c, b)| (c, b.len()))
        .collect();
    (f, u, s)
}

/// Total bytes currently parked in the pool (diagnostics only).
pub fn resident_bytes() -> usize {
    let pool = POOL.lock().expect("buffer pool poisoned");
    let f: usize = pool
        .f32s
        .values()
        .flatten()
        .map(|v| v.capacity() * std::mem::size_of::<f32>())
        .sum();
    let u: usize = pool
        .u32s
        .values()
        .flatten()
        .map(|v| v.capacity() * std::mem::size_of::<u32>())
        .sum();
    let s: usize = pool
        .shapes
        .values()
        .flatten()
        .map(|v| v.capacity() * std::mem::size_of::<usize>())
        .sum();
    f + u + s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_pool_is_transparent() {
        assert!(!active());
        let v = take_f32(8);
        assert!(v.capacity() >= 8 && v.is_empty());
        put_f32(v); // dropped, not pooled
    }

    #[test]
    fn scoped_take_put_roundtrip() {
        let _g = ScopeGuard::new(true);
        put_f32(Vec::with_capacity(16));
        let v = take_f32(10);
        assert!(v.capacity() >= 16, "best fit grants the pooled buffer");
        assert!(v.is_empty());
        put_f32(v);
        let w = take_f32(32);
        assert_eq!(w.capacity(), 32, "no fit falls back to a fresh buffer");
        trim();
    }

    #[test]
    fn zero_sized_requests_bypass_the_pool() {
        let _g = ScopeGuard::new(true);
        put_f32(Vec::with_capacity(4));
        let v = take_f32(0);
        assert_eq!(v.capacity(), 0);
        trim();
    }

    #[test]
    fn guard_unwinds() {
        assert!(!active());
        {
            let _g = ScopeGuard::new(true);
            assert!(active());
            let _h = ScopeGuard::new(false);
            assert!(active());
        }
        assert!(!active());
    }
}

//! Per-session buffer pools: the runtime half of the static memory
//! planner.
//!
//! The planner (`gnnopt-core::memplan`) proves at session build which
//! buffers a step needs and for how long; this module is the mechanism
//! that actually recycles them. Buffers are plain `Vec`s keyed by
//! **capacity** in a [`BTreeMap`] free list, granted best-fit (smallest
//! capacity ≥ request) and returned whole — a region is never split, so
//! a pooled buffer corresponds 1:1 to a planned arena region.
//!
//! # Pools are instances, scopes are per thread
//!
//! Each [`Pool`] is an independent free list behind an `Arc`; a session
//! owns one and seeds it with its own planner regions. The free
//! functions ([`take_f32`], [`put_f32`], …) intercept allocation only
//! while the current thread is inside a [`ScopeGuard`] bracket, and
//! they route to whichever pool that bracket installed — so two
//! sessions stepping concurrently on different threads each recycle
//! through their own free list, never contending on a process-wide
//! mutex or bleeding planner-seeded buffers into each other (the
//! failure mode of the old `static POOL`). Worker threads spawned by
//! kernels never enter a scope, so their temporaries take the ordinary
//! heap path — the zero-allocation steady-state guarantee is a property
//! of the *serial* executor, which is exactly the configuration the
//! counting allocator test pins. With no active scope (for example
//! `GNNOPT_ARENA=0`) every function here degenerates to the plain
//! `Vec` behavior, byte for byte.
//!
//! # Why steady state reaches a fixed point
//!
//! A session step performs a deterministic sequence of buffer requests
//! and returns. After one warmup step the pool holds every buffer the
//! sequence needs (the session additionally pre-seeds it with the
//! planner's regions at build), the `BTreeMap` has a node for every
//! capacity class that will ever exist (empty buckets are kept, never
//! removed), and each bucket `Vec` was born with [`BUCKET_SLACK`]
//! slots of headroom — enough that the return wave of a reset never
//! forces the bucket itself to reallocate. From then on every request
//! is served by `pop` and every return by `push` within existing
//! capacity: zero calls into the global allocator.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

thread_local! {
    /// Stack of pools installed by nested [`ScopeGuard`]s on this
    /// thread; the innermost (last) entry serves every take/put.
    static CURRENT: RefCell<Vec<Pool>> = const { RefCell::new(Vec::new()) };
}

/// True when the current thread is inside a pool scope.
pub fn active() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Runs `f` against the innermost pool installed on this thread, or
/// returns `None` outside any scope.
fn with_current<R>(f: impl FnOnce(&mut PoolInner) -> R) -> Option<R> {
    let pool = CURRENT.with(|c| c.borrow().last().cloned())?;
    let mut inner = pool.inner.lock().expect("buffer pool poisoned");
    Some(f(&mut inner))
}

/// RAII bracket that installs a [`Pool`] as the current thread's
/// allocation target for the guard's lifetime, surviving early returns
/// and panics. `ScopeGuard::new(None)` is a no-op, so callers can
/// bracket unconditionally.
pub struct ScopeGuard {
    on: bool,
}

impl ScopeGuard {
    /// Installs `pool` (when `Some`) on the current thread. Brackets
    /// nest: the innermost installed pool wins, and re-installing the
    /// same pool is harmless.
    pub fn new(pool: Option<&Pool>) -> Self {
        if let Some(p) = pool {
            CURRENT.with(|c| c.borrow_mut().push(p.clone()));
        }
        Self { on: pool.is_some() }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.on {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

struct PoolInner {
    f32s: BTreeMap<usize, Vec<Vec<f32>>>,
    u32s: BTreeMap<usize, Vec<Vec<u32>>>,
    shapes: BTreeMap<usize, Vec<Vec<usize>>>,
    /// Cumulative scoped takes served by the heap instead of the free
    /// list — real misses and injected exhaustion alike. Never reset
    /// (trim included): sessions difference snapshots around a step.
    misses: u64,
}

/// Slots pre-reserved in every bucket `Vec` at creation. Bucket
/// occupancy peaks during a session's reset (the return wave of the
/// previous step), which first happens one step *after* the bucket is
/// created — without slack the bucket itself would reallocate there,
/// breaking the warm-step zero-allocation guarantee. A class parking
/// more than this many buffers simultaneously grows its bucket once
/// and then stays at the new fixed point.
const BUCKET_SLACK: usize = 16;

fn new_bucket<T>() -> Vec<Vec<T>> {
    Vec::with_capacity(BUCKET_SLACK)
}

/// An independent buffer free list. Cloning is shallow (`Arc`): clones
/// share the same free list, which is how a session hands its pool to a
/// [`ScopeGuard`]. Dropping the last clone frees every parked buffer —
/// no explicit trim is needed at session teardown.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Mutex<PoolInner>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("resident_bytes", &self.resident_bytes())
            .finish_non_exhaustive()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(PoolInner {
                f32s: BTreeMap::new(),
                u32s: BTreeMap::new(),
                shapes: BTreeMap::new(),
                misses: 0,
            })),
        }
    }

    /// Pre-seeds the pool with an `f32` buffer of exactly `elems`
    /// capacity.
    ///
    /// Sessions call this at build for every planned arena region so
    /// the very first step already finds its store buffers (no scope is
    /// required: seeding is an explicit request, not an interception).
    pub fn seed_f32(&self, elems: usize) {
        if elems == 0 {
            return;
        }
        self.inner
            .lock()
            .expect("buffer pool poisoned")
            .f32s
            .entry(elems)
            .or_insert_with(new_bucket)
            .push(Vec::with_capacity(elems));
    }

    /// Pre-seeds the pool with a shape vector of `rank` capacity.
    ///
    /// Shape vectors are tiny, but a take miss is still a heap
    /// allocation; sessions seed one per planned region (plus slack for
    /// the auxiliary stashes) so the shape bucket starts at its fixed
    /// point instead of reaching it lazily over the first steps.
    pub fn seed_shape(&self, rank: usize) {
        if rank == 0 {
            return;
        }
        self.inner
            .lock()
            .expect("buffer pool poisoned")
            .shapes
            .entry(rank)
            .or_insert_with(new_bucket)
            .push(Vec::with_capacity(rank));
    }

    /// Frees every pooled buffer (bucket nodes included). Rarely needed
    /// — dropping the pool frees everything — but lets a long-lived
    /// session shed its working set on demand.
    pub fn trim(&self) {
        let mut pool = self.inner.lock().expect("buffer pool poisoned");
        pool.f32s = BTreeMap::new();
        pool.u32s = BTreeMap::new();
        pool.shapes = BTreeMap::new();
    }

    /// Bucket occupancy of each free list as `(capacity, parked
    /// buffers)` pairs in ascending capacity order — `(f32s, u32s,
    /// shapes)`. Diagnostics only.
    #[allow(clippy::type_complexity)]
    #[must_use]
    pub fn occupancy(
        &self,
    ) -> (
        Vec<(usize, usize)>,
        Vec<(usize, usize)>,
        Vec<(usize, usize)>,
    ) {
        fn count<T>(m: &BTreeMap<usize, Vec<Vec<T>>>) -> Vec<(usize, usize)> {
            m.iter()
                .filter(|(_, b)| !b.is_empty())
                .map(|(&c, b)| (c, b.len()))
                .collect()
        }
        let pool = self.inner.lock().expect("buffer pool poisoned");
        (count(&pool.f32s), count(&pool.u32s), count(&pool.shapes))
    }

    /// Cumulative scoped take misses served by the heap instead of the
    /// free list, injected exhaustion included. A warmed session holds
    /// this constant; sessions difference snapshots taken around a step
    /// to report `RunStats::fallback_allocs`.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("buffer pool poisoned").misses
    }

    /// Total bytes currently parked in the pool (diagnostics only).
    pub fn resident_bytes(&self) -> usize {
        fn bytes<T>(m: &BTreeMap<usize, Vec<Vec<T>>>) -> usize {
            m.values()
                .flatten()
                .map(|v| v.capacity() * std::mem::size_of::<T>())
                .sum()
        }
        let pool = self.inner.lock().expect("buffer pool poisoned");
        bytes(&pool.f32s) + bytes(&pool.u32s) + bytes(&pool.shapes)
    }
}

macro_rules! pool_take {
    ($field:ident, $min:expr) => {{
        let min = $min;
        if min == 0 {
            return Vec::with_capacity(min);
        }
        let pooled = with_current(|pool| {
            // An armed `pool.take` failpoint simulates arena
            // exhaustion: every action degrades to a forced miss,
            // because a take returns a buffer (not a `Result`) and the
            // only honest failure mode is the heap fallback the caller
            // already survives. One relaxed atomic load when unarmed.
            let exhausted = crate::fault::check("pool.take").is_some();
            if !exhausted {
                // Best fit: the smallest capacity class that satisfies
                // the request. Empty buckets are skipped but
                // deliberately kept in the map so the tree reaches a
                // structural fixed point.
                if let Some((_, bucket)) = pool.$field.range_mut(min..).find(|(_, b)| !b.is_empty())
                {
                    let mut v = bucket.pop().expect("bucket checked non-empty");
                    v.clear();
                    return Some(v);
                }
            }
            // Miss: count it for the session's fallback accounting and
            // materialize the class's bucket node *now*, so the
            // buffer's eventual return (often a whole step later, at
            // the next reset's return wave) finds the node in place
            // instead of allocating one inside a warmed step.
            pool.misses += 1;
            pool.$field.entry(min).or_insert_with(new_bucket);
            None
        });
        match pooled {
            Some(Some(v)) => v,
            _ => Vec::with_capacity(min),
        }
    }};
}

macro_rules! pool_put {
    ($field:ident, $v:expr) => {{
        let v = $v;
        if v.capacity() == 0 {
            return;
        }
        let cap = v.capacity();
        let mut v = Some(v);
        with_current(|pool| {
            pool.$field
                .entry(cap)
                .or_insert_with(new_bucket)
                .push(v.take().expect("put consumes the buffer once"));
        });
        // Outside a scope `v` is still here and drops normally.
    }};
}

/// Takes an empty `Vec<f32>` with capacity ≥ `min` from the current
/// thread's pool (freshly allocated on a miss or outside a scope).
pub fn take_f32(min: usize) -> Vec<f32> {
    pool_take!(f32s, min)
}

/// Returns a `Vec<f32>` to the current thread's pool (dropped outside a
/// scope).
pub fn put_f32(v: Vec<f32>) {
    pool_put!(f32s, v)
}

/// Takes an empty `Vec<u32>` with capacity ≥ `min` from the current
/// thread's pool.
pub fn take_u32(min: usize) -> Vec<u32> {
    pool_take!(u32s, min)
}

/// Returns a `Vec<u32>` to the current thread's pool.
pub fn put_u32(v: Vec<u32>) {
    pool_put!(u32s, v)
}

/// Takes an empty shape vector (`Vec<usize>`) with capacity ≥ `min`.
pub fn take_shape(min: usize) -> Vec<usize> {
    pool_take!(shapes, min)
}

/// Returns a shape vector to the current thread's pool.
pub fn put_shape(v: Vec<usize>) {
    pool_put!(shapes, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_pool_is_transparent() {
        assert!(!active());
        let v = take_f32(8);
        assert!(v.capacity() >= 8 && v.is_empty());
        put_f32(v); // dropped, not pooled
    }

    #[test]
    fn scoped_take_put_roundtrip() {
        let pool = Pool::new();
        let _g = ScopeGuard::new(Some(&pool));
        put_f32(Vec::with_capacity(16));
        let v = take_f32(10);
        assert!(v.capacity() >= 16, "best fit grants the pooled buffer");
        assert!(v.is_empty());
        put_f32(v);
        let w = take_f32(32);
        assert_eq!(w.capacity(), 32, "no fit falls back to a fresh buffer");
    }

    #[test]
    fn zero_sized_requests_bypass_the_pool() {
        let pool = Pool::new();
        let _g = ScopeGuard::new(Some(&pool));
        put_f32(Vec::with_capacity(4));
        let v = take_f32(0);
        assert_eq!(v.capacity(), 0);
    }

    #[test]
    fn guard_unwinds() {
        assert!(!active());
        {
            let pool = Pool::new();
            let _g = ScopeGuard::new(Some(&pool));
            assert!(active());
            let _h = ScopeGuard::new(None);
            assert!(active());
        }
        assert!(!active());
    }

    #[test]
    fn pools_are_independent() {
        let a = Pool::new();
        let b = Pool::new();
        {
            let _g = ScopeGuard::new(Some(&a));
            put_f32(Vec::with_capacity(64));
        }
        {
            let _g = ScopeGuard::new(Some(&b));
            // b never saw a's buffer: the take is a miss.
            let v = take_f32(64);
            assert_eq!(v.capacity(), 64);
        }
        assert!(a.resident_bytes() >= 64 * 4);
        let (f, _, _) = a.occupancy();
        assert_eq!(f, vec![(64, 1)]);
        a.trim();
        assert_eq!(a.resident_bytes(), 0);
    }

    #[test]
    fn misses_count_and_exhaustion_degrades() {
        let _l = crate::fault::TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let pool = Pool::new();
        assert_eq!(pool.misses(), 0);
        {
            let _g = ScopeGuard::new(Some(&pool));
            put_f32(Vec::with_capacity(8));
            let v = take_f32(8); // hit
            assert_eq!(pool.misses(), 0);
            put_f32(v);
            let w = take_f32(1024); // real miss
            assert_eq!(pool.misses(), 1);
            put_f32(w);
            let fp = crate::fault::FaultGuard::install("pool.take:exhaust").unwrap();
            let x = take_f32(8); // pooled buffer present, but exhausted
            assert_eq!(
                x.capacity(),
                8,
                "injected exhaustion falls back to the heap"
            );
            assert_eq!(pool.misses(), 2);
            drop(fp);
            let y = take_f32(8);
            assert!(y.capacity() >= 8);
            assert_eq!(pool.misses(), 2, "disarmed takes hit the free list again");
        }
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let outer = Pool::new();
        let inner = Pool::new();
        let _g = ScopeGuard::new(Some(&outer));
        {
            let _h = ScopeGuard::new(Some(&inner));
            put_f32(Vec::with_capacity(8));
        }
        assert_eq!(outer.resident_bytes(), 0);
        assert_eq!(inner.resident_bytes(), 8 * 4);
    }
}

//! Vectorized feature-axis row operations: the single source of truth
//! for the inner loops of the graph kernels.
//!
//! Every hot loop in a GNN step that is not a GEMM walks *feature rows*
//! — accumulate an edge row into a vertex row, scale a row, apply an
//! elementwise function across a row. Before this module each call site
//! spelled its own `for` loop; `gnnopt-exec`'s reference kernels and its
//! fused tiled interpreter each had a copy, and staying bit-identical
//! between the two was a discipline, not a construction. Now both paths
//! call these functions, so they share one set of inner loops by
//! definition, and the loops themselves are written over exact-length
//! paired slices (`zip` over equal-length splits) so LLVM autovectorizes
//! them without bounds checks.
//!
//! Accumulation order within a row is element-independent (no horizontal
//! reductions), so vectorization never reorders floating-point math:
//! each output element keeps the exact rounding chain of the scalar
//! loop.

/// `o[i] += x[i]` (the `Gather(Sum)` inner loop).
#[inline]
pub fn add_assign(o: &mut [f32], x: &[f32]) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov += xv;
    }
}

/// `o[i] += alpha · x[i]` (the `Gather(Mean)` inner loop).
#[inline]
pub fn axpy(o: &mut [f32], alpha: f32, x: &[f32]) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov += alpha * xv;
    }
}

/// `o[i] = alpha · x[i]` (the `GatherMeanBwd` row expression).
#[inline]
pub fn scale_into(o: &mut [f32], alpha: f32, x: &[f32]) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov = alpha * xv;
    }
}

/// `o[i] = max(o[i], x[i])` (the edge-softmax max sweep).
#[inline]
pub fn max_assign(o: &mut [f32], x: &[f32]) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov = ov.max(xv);
    }
}

/// `o[i] += a[i] · b[i]` (the edge-softmax backward `Σ g·y` sweep).
#[inline]
pub fn mul_add_accum(o: &mut [f32], a: &[f32], b: &[f32]) {
    for ((ov, &av), &bv) in o.iter_mut().zip(a).zip(b) {
        *ov += av * bv;
    }
}

/// `o[i] = f(o[i], b[i])` (the equal-width `Binary` kernel, whose output
/// starts as a copy of the left operand).
#[inline]
pub fn binary_assign(o: &mut [f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    for (ov, &bv) in o.iter_mut().zip(b) {
        *ov = f(*ov, bv);
    }
}

/// `o[i] = f(a[i], b[i])` (the per-edge `Scatter(Bin)` expression).
#[inline]
pub fn zip2_into(o: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    for ((ov, &av), &bv) in o.iter_mut().zip(a).zip(b) {
        *ov = f(av, bv);
    }
}

/// `o[i] = f(o[i])` (the `Unary` kernel over a pre-copied buffer).
#[inline]
pub fn map_assign(o: &mut [f32], f: impl Fn(f32) -> f32) {
    for ov in o.iter_mut() {
        *ov = f(*ov);
    }
}

/// `o[i] = f(x[i])` (the `Unary` step of the fused interpreter: one pass,
/// no intermediate copy).
#[inline]
pub fn map_into(o: &mut [f32], x: &[f32], f: impl Fn(f32) -> f32) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov = f(xv);
    }
}

/// `d[i] += exp(x[i] − m[i])` (the edge-softmax denominator sweep).
#[inline]
pub fn exp_sub_accum(d: &mut [f32], x: &[f32], m: &[f32]) {
    for ((dv, &xv), &mv) in d.iter_mut().zip(x).zip(m) {
        *dv += (xv - mv).exp();
    }
}

/// `y[i] = exp(x[i] − m[i]) / d[i]` (the edge-softmax output row, both
/// the fresh and the recompute-from-aux paths).
#[inline]
pub fn softmax_from_stats(y: &mut [f32], x: &[f32], m: &[f32], d: &[f32]) {
    for (((yv, &xv), &mv), &dv) in y.iter_mut().zip(x).zip(m).zip(d) {
        *yv = (xv - mv).exp() / dv;
    }
}

/// `o[i] = y[i] · (g[i] − s[i])` (the edge-softmax backward output row).
#[inline]
pub fn softmax_bwd_row(o: &mut [f32], g: &[f32], y: &[f32], s: &[f32]) {
    for (((ov, &gv), &yv), &sv) in o.iter_mut().zip(g).zip(y).zip(s) {
        *ov = yv * (gv - sv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulators_match_scalar_loops() {
        let x = [1.0f32, -2.0, 0.5, 3.25];
        let mut o = [0.5f32, 0.5, 0.5, 0.5];
        add_assign(&mut o, &x);
        assert_eq!(o, [1.5, -1.5, 1.0, 3.75]);
        axpy(&mut o, 2.0, &x);
        assert_eq!(o, [3.5, -5.5, 2.0, 10.25]);
        scale_into(&mut o, -1.0, &x);
        assert_eq!(o, [-1.0, 2.0, -0.5, -3.25]);
        max_assign(&mut o, &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(o, [0.0, 2.0, 0.0, 0.0]);
        mul_add_accum(&mut o, &x, &x);
        assert_eq!(o, [1.0, 6.0, 0.25, 10.5625]);
    }

    #[test]
    fn elementwise_closures_apply_in_place() {
        let mut o = [1.0f32, 2.0, 3.0];
        binary_assign(&mut o, &[10.0, 20.0, 30.0], |a, b| a + b);
        assert_eq!(o, [11.0, 22.0, 33.0]);
        zip2_into(&mut o, &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], |a, b| a * b);
        assert_eq!(o, [4.0, 10.0, 18.0]);
        map_assign(&mut o, |v| -v);
        assert_eq!(o, [-4.0, -10.0, -18.0]);
        map_into(&mut o, &[1.0, 2.0, 3.0], |v| v * 2.0);
        assert_eq!(o, [2.0, 4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_reproduce_the_kernel_expressions() {
        let x = [0.0f32, 1.0];
        let m = [1.0f32, 1.0];
        let mut d = [0.0f32, 0.0];
        exp_sub_accum(&mut d, &x, &m);
        assert_eq!(d, [(-1.0f32).exp(), 1.0]);
        let mut y = [0.0f32; 2];
        softmax_from_stats(&mut y, &x, &m, &d);
        assert_eq!(y, [1.0, 1.0]);
        let mut o = [0.0f32; 2];
        softmax_bwd_row(&mut o, &[2.0, 3.0], &y, &[0.5, 0.5]);
        assert_eq!(o, [1.5, 2.5]);
    }
}

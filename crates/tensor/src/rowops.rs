//! Vectorized feature-axis row operations: the single source of truth
//! for the inner loops of the graph kernels.
//!
//! Every hot loop in a GNN step that is not a GEMM walks *feature rows*
//! — accumulate an edge row into a vertex row, scale a row, apply an
//! elementwise function across a row. Before this module each call site
//! spelled its own `for` loop; `gnnopt-exec`'s reference kernels and its
//! fused tiled interpreter each had a copy, and staying bit-identical
//! between the two was a discipline, not a construction. Now both paths
//! call these functions, so they share one set of inner loops by
//! definition.
//!
//! # SIMD dispatch
//!
//! Each primitive has exactly one loop body, defined in [`scalar`]. On
//! x86-64 the same body is additionally monomorphized inside a
//! `#[target_feature(enable = "avx2")]` wrapper, so LLVM revectorizes it
//! at 8 lanes; a process-wide [`is_x86_feature_detected!`] check (cached
//! once) picks the wide build at runtime, mirroring the geometry-selection
//! pattern of the [`crate::gemm`] module. Because both monomorphizations
//! compile the *same* Rust body — IEEE element operations, no
//! fused-multiply-add contraction (only `avx2` is enabled, and Rust never
//! contracts) — the two paths are bit-identical by construction. The CI
//! gate pins this by re-running the suite under
//! [`ROWOPS_ENV_VAR`]`=scalar`, which forces the scalar build.
//!
//! Accumulation order within a row is element-independent (no horizontal
//! reductions), so vectorization never reorders floating-point math:
//! each output element keeps the exact rounding chain of the scalar
//! loop. The `exp`-based softmax rows call `libm` per element and do not
//! vectorize on either path; they are dispatched anyway so the module
//! has one uniform rule.

/// Environment variable selecting the rowops build: set to `scalar` to
/// force the portable path even when AVX2 is available (the CI
/// bit-identity leg). Any other value (or unset) keeps runtime detection.
pub const ROWOPS_ENV_VAR: &str = "GNNOPT_ROWOPS";

/// True when the AVX2 monomorphizations should be used: AVX2 detected at
/// runtime and not overridden by [`ROWOPS_ENV_VAR`]`=scalar`. Resolved
/// once per process (the primitives run on rows as narrow as two
/// elements, so the check must not touch the environment per call).
#[cfg(target_arch = "x86_64")]
#[inline]
fn use_avx2() -> bool {
    use std::sync::OnceLock;
    static USE_AVX2: OnceLock<bool> = OnceLock::new();
    *USE_AVX2.get_or_init(|| {
        let forced_scalar =
            std::env::var(ROWOPS_ENV_VAR).is_ok_and(|v| v.trim().eq_ignore_ascii_case("scalar"));
        !forced_scalar && std::arch::is_x86_feature_detected!("avx2")
    })
}

/// The portable loop bodies — the *definition* of every primitive. The
/// AVX2 path re-monomorphizes these exact functions with wider codegen;
/// tests and the CI scalar leg call them directly to pin bit-identity
/// against the dispatched entry points.
pub mod scalar {
    /// `o[i] += x[i]` (the `Gather(Sum)` inner loop).
    #[inline(always)]
    pub fn add_assign(o: &mut [f32], x: &[f32]) {
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov += xv;
        }
    }

    /// `o[i] += alpha · x[i]` (the `Gather(Mean)` inner loop).
    #[inline(always)]
    pub fn axpy(o: &mut [f32], alpha: f32, x: &[f32]) {
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov += alpha * xv;
        }
    }

    /// `o[i] = alpha · x[i]` (the `GatherMeanBwd` row expression).
    #[inline(always)]
    pub fn scale_into(o: &mut [f32], alpha: f32, x: &[f32]) {
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov = alpha * xv;
        }
    }

    /// `o[i] = max(o[i], x[i])` (the edge-softmax max sweep).
    #[inline(always)]
    pub fn max_assign(o: &mut [f32], x: &[f32]) {
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov = ov.max(xv);
        }
    }

    /// `o[i] += a[i] · b[i]` (the edge-softmax backward `Σ g·y` sweep).
    #[inline(always)]
    pub fn mul_add_accum(o: &mut [f32], a: &[f32], b: &[f32]) {
        for ((ov, &av), &bv) in o.iter_mut().zip(a).zip(b) {
            *ov += av * bv;
        }
    }

    /// `o[i] = f(o[i], b[i])` (the equal-width `Binary` kernel, whose
    /// output starts as a copy of the left operand).
    #[inline(always)]
    pub fn binary_assign(o: &mut [f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
        for (ov, &bv) in o.iter_mut().zip(b) {
            *ov = f(*ov, bv);
        }
    }

    /// `o[i] = f(a[i], b[i])` (the per-edge `Scatter(Bin)` expression).
    #[inline(always)]
    pub fn zip2_into(o: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
        for ((ov, &av), &bv) in o.iter_mut().zip(a).zip(b) {
            *ov = f(av, bv);
        }
    }

    /// `o[i] = f(o[i])` (the `Unary` kernel over a pre-copied buffer).
    #[inline(always)]
    pub fn map_assign(o: &mut [f32], f: impl Fn(f32) -> f32) {
        for ov in o.iter_mut() {
            *ov = f(*ov);
        }
    }

    /// `o[i] = f(x[i])` (the `Unary` step of the fused interpreter: one
    /// pass, no intermediate copy).
    #[inline(always)]
    pub fn map_into(o: &mut [f32], x: &[f32], f: impl Fn(f32) -> f32) {
        for (ov, &xv) in o.iter_mut().zip(x) {
            *ov = f(xv);
        }
    }

    /// `d[i] += exp(x[i] − m[i])` (the edge-softmax denominator sweep).
    #[inline(always)]
    pub fn exp_sub_accum(d: &mut [f32], x: &[f32], m: &[f32]) {
        for ((dv, &xv), &mv) in d.iter_mut().zip(x).zip(m) {
            *dv += (xv - mv).exp();
        }
    }

    /// `y[i] = exp(x[i] − m[i]) / d[i]` (the edge-softmax output row,
    /// both the fresh and the recompute-from-aux paths).
    #[inline(always)]
    pub fn softmax_from_stats(y: &mut [f32], x: &[f32], m: &[f32], d: &[f32]) {
        for (((yv, &xv), &mv), &dv) in y.iter_mut().zip(x).zip(m).zip(d) {
            *yv = (xv - mv).exp() / dv;
        }
    }

    /// `o[i] = y[i] · (g[i] − s[i])` (the edge-softmax backward output
    /// row).
    #[inline(always)]
    pub fn softmax_bwd_row(o: &mut [f32], g: &[f32], y: &[f32], s: &[f32]) {
        for (((ov, &gv), &yv), &sv) in o.iter_mut().zip(g).zip(y).zip(s) {
            *ov = yv * (gv - sv);
        }
    }
}

/// Index of the first non-finite element of `x` (NaN or ±inf), or
/// `None` when every element is finite — the numeric guard's one
/// streaming pass over a kernel output, also backing the GEMM
/// zero-skip soundness probe.
///
/// Unlike the primitives above this returns a value, so it is not
/// routed through the AVX2 dispatcher; instead it folds a branch-free
/// all-finite flag per fixed-width chunk (which LLVM vectorizes on its
/// own) and only a failing chunk pays the positional rescan. There is
/// no floating-point arithmetic here, so bit-identity is not at stake.
#[inline]
pub fn first_nonfinite(x: &[f32]) -> Option<usize> {
    const CHUNK: usize = 64;
    let mut base = 0;
    for c in x.chunks(CHUNK) {
        let all_finite = c.iter().fold(true, |ok, v| ok & v.is_finite());
        if !all_finite {
            return c.iter().position(|v| !v.is_finite()).map(|i| base + i);
        }
        base += c.len();
    }
    None
}

/// Generates, for one primitive, the AVX2 monomorphization of its
/// [`scalar`] body plus the public runtime-dispatched entry point. The
/// macro forwards arguments verbatim, so the two paths can never diverge
/// in semantics — only in codegen width.
macro_rules! avx2_dispatched {
    ($(#[$doc:meta])* $name:ident, $avx2:ident,
     ($($arg:ident: $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) {
            scalar::$name($($arg),*)
        }

        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if use_avx2() {
                // SAFETY: `use_avx2()` verified AVX2 support at runtime.
                return unsafe { $avx2($($arg),*) };
            }
            scalar::$name($($arg),*)
        }
    };
}

avx2_dispatched!(
    /// `o[i] += x[i]` (the `Gather(Sum)` inner loop).
    add_assign, add_assign_avx2, (o: &mut [f32], x: &[f32])
);
avx2_dispatched!(
    /// `o[i] += alpha · x[i]` (the `Gather(Mean)` inner loop).
    axpy, axpy_avx2, (o: &mut [f32], alpha: f32, x: &[f32])
);
avx2_dispatched!(
    /// `o[i] = alpha · x[i]` (the `GatherMeanBwd` row expression).
    scale_into, scale_into_avx2, (o: &mut [f32], alpha: f32, x: &[f32])
);
avx2_dispatched!(
    /// `o[i] = max(o[i], x[i])` (the edge-softmax max sweep).
    max_assign, max_assign_avx2, (o: &mut [f32], x: &[f32])
);
avx2_dispatched!(
    /// `o[i] += a[i] · b[i]` (the edge-softmax backward `Σ g·y` sweep).
    mul_add_accum, mul_add_accum_avx2, (o: &mut [f32], a: &[f32], b: &[f32])
);
avx2_dispatched!(
    /// `d[i] += exp(x[i] − m[i])` (the edge-softmax denominator sweep).
    exp_sub_accum, exp_sub_accum_avx2, (d: &mut [f32], x: &[f32], m: &[f32])
);
avx2_dispatched!(
    /// `y[i] = exp(x[i] − m[i]) / d[i]` (the edge-softmax output row,
    /// both the fresh and the recompute-from-aux paths).
    softmax_from_stats, softmax_from_stats_avx2,
    (y: &mut [f32], x: &[f32], m: &[f32], d: &[f32])
);
avx2_dispatched!(
    /// `o[i] = y[i] · (g[i] − s[i])` (the edge-softmax backward output
    /// row).
    softmax_bwd_row, softmax_bwd_row_avx2,
    (o: &mut [f32], g: &[f32], y: &[f32], s: &[f32])
);

// The closure-parameterized primitives are dispatched by hand: each AVX2
// wrapper is generic over the closure, so the caller's element expression
// is inlined *inside* the `target_feature` context and vectorized at the
// same width as the fixed-form primitives above.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn binary_assign_avx2<F: Fn(f32, f32) -> f32>(o: &mut [f32], b: &[f32], f: F) {
    scalar::binary_assign(o, b, f)
}

/// `o[i] = f(o[i], b[i])` (the equal-width `Binary` kernel, whose output
/// starts as a copy of the left operand).
#[inline]
pub fn binary_assign(o: &mut [f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` verified AVX2 support at runtime.
        return unsafe { binary_assign_avx2(o, b, f) };
    }
    scalar::binary_assign(o, b, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zip2_into_avx2<F: Fn(f32, f32) -> f32>(o: &mut [f32], a: &[f32], b: &[f32], f: F) {
    scalar::zip2_into(o, a, b, f)
}

/// `o[i] = f(a[i], b[i])` (the per-edge `Scatter(Bin)` expression).
#[inline]
pub fn zip2_into(o: &mut [f32], a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` verified AVX2 support at runtime.
        return unsafe { zip2_into_avx2(o, a, b, f) };
    }
    scalar::zip2_into(o, a, b, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn map_assign_avx2<F: Fn(f32) -> f32>(o: &mut [f32], f: F) {
    scalar::map_assign(o, f)
}

/// `o[i] = f(o[i])` (the `Unary` kernel over a pre-copied buffer).
#[inline]
pub fn map_assign(o: &mut [f32], f: impl Fn(f32) -> f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` verified AVX2 support at runtime.
        return unsafe { map_assign_avx2(o, f) };
    }
    scalar::map_assign(o, f)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn map_into_avx2<F: Fn(f32) -> f32>(o: &mut [f32], x: &[f32], f: F) {
    scalar::map_into(o, x, f)
}

/// `o[i] = f(x[i])` (the `Unary` step of the fused interpreter: one pass,
/// no intermediate copy).
#[inline]
pub fn map_into(o: &mut [f32], x: &[f32], f: impl Fn(f32) -> f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` verified AVX2 support at runtime.
        return unsafe { map_into_avx2(o, x, f) };
    }
    scalar::map_into(o, x, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulators_match_scalar_loops() {
        let x = [1.0f32, -2.0, 0.5, 3.25];
        let mut o = [0.5f32, 0.5, 0.5, 0.5];
        add_assign(&mut o, &x);
        assert_eq!(o, [1.5, -1.5, 1.0, 3.75]);
        axpy(&mut o, 2.0, &x);
        assert_eq!(o, [3.5, -5.5, 2.0, 10.25]);
        scale_into(&mut o, -1.0, &x);
        assert_eq!(o, [-1.0, 2.0, -0.5, -3.25]);
        max_assign(&mut o, &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(o, [0.0, 2.0, 0.0, 0.0]);
        mul_add_accum(&mut o, &x, &x);
        assert_eq!(o, [1.0, 6.0, 0.25, 10.5625]);
    }

    #[test]
    fn elementwise_closures_apply_in_place() {
        let mut o = [1.0f32, 2.0, 3.0];
        binary_assign(&mut o, &[10.0, 20.0, 30.0], |a, b| a + b);
        assert_eq!(o, [11.0, 22.0, 33.0]);
        zip2_into(&mut o, &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], |a, b| a * b);
        assert_eq!(o, [4.0, 10.0, 18.0]);
        map_assign(&mut o, |v| -v);
        assert_eq!(o, [-4.0, -10.0, -18.0]);
        map_into(&mut o, &[1.0, 2.0, 3.0], |v| v * 2.0);
        assert_eq!(o, [2.0, 4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_reproduce_the_kernel_expressions() {
        let x = [0.0f32, 1.0];
        let m = [1.0f32, 1.0];
        let mut d = [0.0f32, 0.0];
        exp_sub_accum(&mut d, &x, &m);
        assert_eq!(d, [(-1.0f32).exp(), 1.0]);
        let mut y = [0.0f32; 2];
        softmax_from_stats(&mut y, &x, &m, &d);
        assert_eq!(y, [1.0, 1.0]);
        let mut o = [0.0f32; 2];
        softmax_bwd_row(&mut o, &[2.0, 3.0], &y, &[0.5, 0.5]);
        assert_eq!(o, [1.5, 2.5]);
    }

    #[test]
    fn first_nonfinite_localizes_across_chunk_boundaries() {
        assert_eq!(first_nonfinite(&[]), None);
        assert_eq!(first_nonfinite(&[1.0, -2.0, 0.0]), None);
        for idx in [0usize, 1, 63, 64, 65, 127, 130] {
            for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
                let mut v = vec![0.5f32; 140];
                v[idx] = bad;
                assert_eq!(first_nonfinite(&v), Some(idx), "bad={bad} idx={idx}");
            }
        }
        // First, not any: two non-finite values report the earlier one.
        let mut v = vec![1.0f32; 100];
        v[70] = f32::INFINITY;
        v[12] = f32::NAN;
        assert_eq!(first_nonfinite(&v), Some(12));
    }

    /// The dispatched entry points must be bit-identical to the scalar
    /// bodies for every row length (SIMD width 8 makes remainders of
    /// every residue class interesting) — the same contract the CI
    /// `GNNOPT_ROWOPS=scalar` leg pins at suite scale.
    #[test]
    fn dispatched_paths_are_bit_identical_to_scalar() {
        for len in 0..40usize {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 - 7.5) * 0.811).collect();
            let y: Vec<f32> = (0..len)
                .map(|i| (i as f32 * 1.37 - 3.0).sin() * 8.0)
                .collect();
            let base: Vec<f32> = (0..len).map(|i| (i as f32).cos() * 2.0).collect();

            let run = |disp: &dyn Fn(&mut [f32]), scal: &dyn Fn(&mut [f32])| {
                let mut a = base.clone();
                let mut b = base.clone();
                disp(&mut a);
                scal(&mut b);
                assert!(
                    a.iter().zip(&b).all(|(l, r)| l.to_bits() == r.to_bits()),
                    "dispatched path diverged from scalar at len {len}"
                );
            };

            run(&|o| add_assign(o, &x), &|o| scalar::add_assign(o, &x));
            run(&|o| axpy(o, 1.75, &x), &|o| scalar::axpy(o, 1.75, &x));
            run(&|o| scale_into(o, -0.3, &x), &|o| {
                scalar::scale_into(o, -0.3, &x)
            });
            run(&|o| max_assign(o, &x), &|o| scalar::max_assign(o, &x));
            run(&|o| mul_add_accum(o, &x, &y), &|o| {
                scalar::mul_add_accum(o, &x, &y)
            });
            run(&|o| exp_sub_accum(o, &x, &y), &|o| {
                scalar::exp_sub_accum(o, &x, &y)
            });
            run(&|o| softmax_from_stats(o, &x, &y, &base), &|o| {
                scalar::softmax_from_stats(o, &x, &y, &base)
            });
            run(&|o| softmax_bwd_row(o, &x, &y, &base), &|o| {
                scalar::softmax_bwd_row(o, &x, &y, &base)
            });
            run(&|o| binary_assign(o, &x, |a, b| a * b + 0.5), &|o| {
                scalar::binary_assign(o, &x, |a, b| a * b + 0.5)
            });
            run(&|o| zip2_into(o, &x, &y, |a, b| a - b), &|o| {
                scalar::zip2_into(o, &x, &y, |a, b| a - b)
            });
            run(&|o| map_assign(o, |v| v * v), &|o| {
                scalar::map_assign(o, |v| v * v)
            });
            run(&|o| map_into(o, &x, |v| v + 1.0), &|o| {
                scalar::map_into(o, &x, |v| v + 1.0)
            });
        }
    }
}

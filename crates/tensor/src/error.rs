use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible operation names the offending operation so executor-level
/// failures point back at the IR node that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// The operation that was attempted (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The provided buffer length does not match the product of the shape.
    LengthMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Length of the provided buffer.
        len: usize,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Axis length.
        len: usize,
    },
    /// The operation requires a non-empty tensor.
    Empty {
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { shape, len } => {
                write!(f, "buffer of length {len} does not fit shape {shape:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for axis of length {len}")
            }
            TensorError::Empty { op } => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.starts_with("shape mismatch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}

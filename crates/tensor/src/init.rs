//! Random initializers used by the model zoo.

use crate::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot-uniform initializer with a deterministic seed.
///
/// ```
/// use gnnopt_tensor::XavierInit;
/// let mut init = XavierInit::new(42);
/// let w = init.matrix(16, 8);
/// assert_eq!(w.shape(), &[16, 8]);
/// ```
#[derive(Debug)]
pub struct XavierInit {
    rng: SmallRng,
}

impl XavierInit {
    /// Creates an initializer seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples a `[rows, cols]` weight matrix from
    /// `U(−√(6/(rows+cols)), +√(6/(rows+cols)))`.
    pub fn matrix(&mut self, rows: usize, cols: usize) -> Tensor {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let rng = &mut self.rng;
        Tensor::from_fn(&[rows, cols], |_| rng.gen_range(-bound..bound))
    }

    /// Samples a `[len]` vector with the same bound as a `[len, 1]` matrix.
    pub fn vector(&mut self, len: usize) -> Tensor {
        let bound = (6.0 / (len + 1) as f32).sqrt();
        let rng = &mut self.rng;
        Tensor::from_fn(&[len], |_| rng.gen_range(-bound..bound))
    }

    /// Samples a tensor of arbitrary shape from `U(lo, hi)`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let rng = &mut self.rng;
        Tensor::from_fn(shape, |_| rng.gen_range(lo..hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = XavierInit::new(7).matrix(4, 4);
        let b = XavierInit::new(7).matrix(4, 4);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = XavierInit::new(8).matrix(4, 4);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn values_within_bound() {
        let w = XavierInit::new(1).matrix(10, 30);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn uniform_respects_range() {
        let t = XavierInit::new(2).uniform(&[100], -0.5, 0.25);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.25).contains(&x)));
    }
}

//! Reductions and row-wise softmax.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of every element.
    pub fn sum_all(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of every element; `0.0` for an empty tensor.
    pub fn mean_all(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum_all() / self.numel() as f32
        }
    }

    /// Sums over rows, producing a `[cols]` vector
    /// (`axis = 0` reduction of a 2-D tensor).
    pub fn sum_rows(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0; c];
        for i in 0..r {
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += x;
            }
        }
        Tensor::from_vec(out)
    }

    /// Sums each row, producing a `[rows, 1]` column.
    pub fn sum_cols(&self) -> Tensor {
        let r = self.rows();
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            out.push(self.row(i).iter().sum());
        }
        Tensor::new(&[r, 1], out).expect("shape is consistent")
    }

    /// Row-wise maximum: values `[rows, 1]` and argmax column indices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has zero columns.
    pub fn max_cols(&self) -> Result<(Tensor, Vec<usize>)> {
        let (r, c) = (self.rows(), self.cols());
        if c == 0 {
            return Err(TensorError::Empty { op: "max_cols" });
        }
        let mut vals = Vec::with_capacity(r);
        let mut idxs = Vec::with_capacity(r);
        for i in 0..r {
            let row = self.row(i);
            let (mut best, mut bi) = (row[0], 0);
            for (j, &x) in row.iter().enumerate().skip(1) {
                if x > best {
                    best = x;
                    bi = j;
                }
            }
            vals.push(best);
            idxs.push(bi);
        }
        Ok((Tensor::new(&[r, 1], vals)?, idxs))
    }

    /// Row-wise argmax indices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has zero columns.
    pub fn argmax_cols(&self) -> Result<Vec<usize>> {
        Ok(self.max_cols()?.1)
    }

    /// Numerically-stable row-wise softmax.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] if the tensor has zero columns.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        let (r, c) = (self.rows(), self.cols());
        if c == 0 {
            return Err(TensorError::Empty { op: "softmax_rows" });
        }
        let mut out = self.clone();
        for i in 0..r {
            let row = out.row_mut(i);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                denom += *x;
            }
            for x in row.iter_mut() {
                *x /= denom;
            }
        }
        Ok(out)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 6.0, 5.0]]).unwrap()
    }

    #[test]
    fn sums() {
        assert_eq!(t().sum_all(), 21.0);
        assert_eq!(t().sum_rows().as_slice(), &[5.0, 8.0, 8.0]);
        assert_eq!(t().sum_cols().as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn max_and_argmax() {
        let (vals, idx) = t().max_cols().unwrap();
        assert_eq!(vals.as_slice(), &[3.0, 6.0]);
        assert_eq!(idx, vec![2, 1]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let s = t().softmax_rows().unwrap();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = t();
        let shifted = a.map(|x| x + 100.0);
        assert!(a
            .softmax_rows()
            .unwrap()
            .allclose(&shifted.softmax_rows().unwrap()));
    }

    #[test]
    fn empty_cols_error() {
        let e = Tensor::zeros(&[3, 0]);
        assert!(e.max_cols().is_err());
        assert!(e.softmax_rows().is_err());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(&[0]).mean_all(), 0.0);
    }
}

//! Elementwise unary and binary operations with row-broadcast support.
//!
//! Broadcasting rules (deliberately narrow — exactly what GNN kernels need):
//! `[r, c] ⊕ [r, c]`, `[r, c] ⊕ [c]` (per-row vector), `[r, c] ⊕ [r, 1]`
//! (per-row scalar), and `[r, c] ⊕ scalar`.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::new(
            self.shape(),
            self.as_slice().iter().map(|&x| f(x)).collect(),
        )
        .expect("map preserves shape")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.as_mut_slice() {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        Tensor::new(
            self.shape(),
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Binary op with broadcasting (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `other` matches none of the
    /// supported broadcast patterns.
    pub fn broadcast_op(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape() == other.shape() {
            return self.zip_map(other, f);
        }
        let (r, c) = (self.rows(), self.cols());
        let mut out = self.clone();
        if other.shape() == [c] || (other.shape().len() == 2 && other.shape() == [1, c]) {
            let v = other.as_slice();
            for i in 0..r {
                for (x, &b) in out.row_mut(i).iter_mut().zip(v) {
                    *x = f(*x, b);
                }
            }
            return Ok(out);
        }
        if other.shape() == [r, 1] || other.shape() == [r] {
            let v = other.as_slice();
            for (i, &b) in v.iter().enumerate().take(r) {
                for x in out.row_mut(i) {
                    *x = f(*x, b);
                }
            }
            return Ok(out);
        }
        if other.numel() == 1 {
            let b = other.as_slice()[0];
            out.map_inplace(|x| f(x, b));
            return Ok(out);
        }
        Err(TensorError::ShapeMismatch {
            op: "broadcast_op",
            lhs: self.shape().to_vec(),
            rhs: other.shape().to_vec(),
        })
    }

    /// Elementwise (broadcasting) addition.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a + b)
    }

    /// Elementwise (broadcasting) subtraction.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a - b)
    }

    /// Elementwise (broadcasting) multiplication.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a * b)
    }

    /// Elementwise (broadcasting) division.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a / b)
    }

    /// Elementwise (broadcasting) maximum.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, f32::max)
    }

    /// Elementwise (broadcasting) minimum.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn minimum(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, f32::min)
    }

    /// Adds `other * alpha` into `self` in place (same shape only).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy_inplace",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Leaky rectified linear unit with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        self.map(|x| if x >= 0.0 { x } else { slope * x })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Tensor {
        Tensor::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]).unwrap()
    }

    #[test]
    fn add_same_shape() {
        let a = t2();
        let b = a.add(&a).unwrap();
        assert_eq!(b.as_slice(), &[2.0, -4.0, 6.0, -8.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        let a = t2();
        let v = Tensor::from_vec(vec![10.0, 20.0]);
        let b = a.add(&v).unwrap();
        assert_eq!(b.as_slice(), &[11.0, 18.0, 13.0, 16.0]);
    }

    #[test]
    fn broadcast_column() {
        let a = t2();
        let v = Tensor::new(&[2, 1], vec![1.0, -1.0]).unwrap();
        let b = a.add(&v).unwrap();
        assert_eq!(b.as_slice(), &[2.0, -1.0, 2.0, -5.0]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = t2();
        let s = Tensor::from_vec(vec![0.5]);
        let b = a.mul(&s).unwrap();
        assert_eq!(b.as_slice(), &[0.5, -1.0, 1.5, -2.0]);
    }

    #[test]
    fn mismatch_is_error() {
        let a = t2();
        let bad = Tensor::zeros(&[3, 3]);
        assert!(a.add(&bad).is_err());
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let a = t2();
        let b = a.leaky_relu(0.1);
        assert_eq!(b.as_slice(), &[1.0, -0.2, 3.0, -0.4]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t2();
        let b = t2();
        a.axpy_inplace(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, -6.0, 9.0, -12.0]);
    }

    #[test]
    fn sigmoid_bounds() {
        let s = t2().sigmoid();
        assert!(s.as_slice().iter().all(|&x| x > 0.0 && x < 1.0));
    }
}

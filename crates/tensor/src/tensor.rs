use crate::{pool, Result, TensorError, DEFAULT_ATOL, DEFAULT_RTOL};
use std::fmt;

/// Builds a shape vector through the buffer pool (a plain allocation
/// whenever no pool scope is active on this thread).
fn shape_vec(shape: &[usize]) -> Vec<usize> {
    let mut s = pool::take_shape(shape.len());
    s.extend_from_slice(shape);
    s
}

/// A dense, row-major `f32` tensor.
///
/// Most tensors in a GNN workload are 2-D feature matrices `[rows, cols]`
/// (rows = vertices or edges, cols = feature width); the type stores a
/// general shape so multi-head layouts `[n, heads, f]` can be represented,
/// but the 2-D accessors are the primary interface.
///
/// # Allocation
///
/// Construction and `Drop` route the backing buffers through the
/// session buffer pool ([`crate::pool`]) when the current thread is
/// inside an arena scope; otherwise they are ordinary `Vec`s. A pooled
/// buffer may have `capacity() > numel()` — all accessors go through
/// `len`, so the over-allocation is unobservable.
#[derive(PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = pool::take_f32(self.data.len());
        data.extend_from_slice(&self.data);
        Self {
            shape: shape_vec(&self.shape),
            data,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Outside a pool scope `put_*` drops its argument, so this is
        // free; inside one, the buffers are recycled for the next step.
        pool::put_f32(std::mem::take(&mut self.data));
        pool::put_shape(std::mem::take(&mut self.shape));
    }
}

impl Tensor {
    /// Creates a tensor from a shape and a backing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self {
            shape: shape_vec(shape),
            data,
        })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = pool::take_f32(numel);
        data.resize(numel, value);
        Self {
            shape: shape_vec(shape),
            data,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a 2-D tensor from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = pool::take_f32(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "from_rows",
                    lhs: vec![rows.len(), cols],
                    rhs: vec![r.len()],
                });
            }
            data.extend_from_slice(r);
        }
        Self::new(&[rows.len(), cols], data)
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self {
            shape: shape_vec(&[data.len()]),
            data,
        }
    }

    /// Builds a tensor by calling `f(flat_index)` for each element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = pool::take_f32(numel);
        data.extend((0..numel).map(&mut f));
        Self {
            shape: shape_vec(shape),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of rows (first axis). Zero for rank-0 tensors.
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of columns: the product of all axes after the first.
    ///
    /// A rank-1 tensor is treated as a single row, so `cols` is its length.
    pub fn cols(&self) -> usize {
        if self.shape.len() <= 1 {
            self.shape.first().copied().unwrap_or(0)
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of the tensor's payload in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Returns a view of row `i` of a 2-D (or flattened n-d) tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols_for_rows();
        &self.data[i * c..(i + 1) * c]
    }

    /// Returns a mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols_for_rows();
        &mut self.data[i * c..(i + 1) * c]
    }

    fn cols_for_rows(&self) -> usize {
        if self.shape.len() <= 1 {
            // rank-1: each "row" is a single element
            1
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// Element accessor for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        let cols = self.cols_for_rows();
        self.data[r * cols + c]
    }

    /// Element setter for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let cols = self.cols_for_rows();
        self.data[r * cols + c] = v;
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if numel != self.data.len() {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: self.data.len(),
            });
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        Ok(self)
    }

    /// Selects rows by index, producing a new tensor (a "gather rows").
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for any out-of-range index.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let c = self.cols_for_rows();
        let mut data = pool::take_f32(indices.len() * c);
        for &i in indices {
            if i >= self.rows() {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    len: self.rows(),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        let mut shape = shape_vec(&self.shape);
        shape[0] = indices.len();
        Self::new(&shape, data)
    }

    /// Concatenates two 2-D tensors along the column axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Result<Self> {
        if self.rows() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let (ca, cb) = (self.cols_for_rows(), other.cols_for_rows());
        let mut data = pool::take_f32(self.rows() * (ca + cb));
        for i in 0..self.rows() {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Self::new(&[self.rows(), ca + cb], data)
    }

    /// Splits a 2-D tensor into two column blocks `[.., 0..split)` and
    /// `[.., split..)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `split > cols`.
    pub fn split_cols(&self, split: usize) -> Result<(Self, Self)> {
        let c = self.cols_for_rows();
        if split > c {
            return Err(TensorError::AxisOutOfRange {
                axis: split,
                rank: c,
            });
        }
        let mut left = pool::take_f32(self.rows() * split);
        let mut right = pool::take_f32(self.rows() * (c - split));
        for i in 0..self.rows() {
            let r = self.row(i);
            left.extend_from_slice(&r[..split]);
            right.extend_from_slice(&r[split..]);
        }
        Ok((
            Self::new(&[self.rows(), split], left)?,
            Self::new(&[self.rows(), c - split], right)?,
        ))
    }

    /// True if every element of `self` and `other` is within
    /// `atol + rtol * |other|`.
    pub fn allclose_with(&self, other: &Tensor, atol: f32, rtol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// [`Tensor::allclose_with`] using the crate default tolerances.
    pub fn allclose(&self, other: &Tensor) -> bool {
        self.allclose_with(other, DEFAULT_ATOL, DEFAULT_RTOL)
    }

    /// Maximum absolute elementwise difference; `f32::INFINITY` on shape
    /// mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        if self.shape != other.shape {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_length() {
        assert!(Tensor::new(&[2, 3], vec![0.0; 6]).is_ok());
        assert!(matches!(
            Tensor::new(&[2, 3], vec![0.0; 5]),
            Err(TensorError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(1, 2), 0.0);
        assert_eq!(t.numel(), 9);
    }

    #[test]
    fn rows_and_cols() {
        let t = Tensor::zeros(&[4, 2, 3]);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 6);
        assert_eq!(t.row(1).len(), 6);
    }

    #[test]
    fn select_rows_gathers() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let s = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        assert!(t.select_rows(&[3]).is_err());
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        let (l, r) = c.split_cols(1).unwrap();
        assert_eq!(l.as_slice(), a.as_slice());
        assert_eq!(r.as_slice(), b.as_slice());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let t = t.reshape(&[2, 2]).unwrap();
        assert_eq!(t.at(1, 0), 3.0);
        assert!(t.clone().reshape(&[3, 2]).is_err());
    }

    #[test]
    fn allclose_tolerates_small_noise() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6]);
        assert!(a.allclose(&b));
        let c = Tensor::from_vec(vec![1.1, 2.0]);
        assert!(!a.allclose(&c));
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Tensor::default()).is_empty());
    }
}

//! Packed, register-tiled GEMM engine: one shared microkernel behind
//! every dense matrix product in the workspace.
//!
//! # Why a blocked kernel
//!
//! The reference `ikj` loop ([`GemmKernel::Naive`]) re-streams a full
//! output row and a full `B` row from cache for every `(i, k)` pair —
//! three memory operations per two flops. The blocked engine
//! ([`GemmKernel::Blocked`]) packs `A` and `B` into cache-resident panels
//! and updates an `MR × NR` register tile of `C` per inner iteration, so
//! the hot loop performs [`NR`] independent multiply-adds per packed
//! element with no loads or stores of `C` at all — the classic
//! GotoBLAS/BLIS GEBP structure, written so the fixed-width inner loop
//! autovectorizes.
//!
//! # Determinism: bit-identical to the naive loop
//!
//! Blocking never changes *what* is accumulated, only *where operands
//! live*. Every output element `C[i,j]` is produced by the same chain of
//! `f32` operations as the naive kernel:
//!
//! ```text
//! c = 0.0;  for k in 0..K { c += A[i,k] * B[k,j]; }   // increasing k
//! ```
//!
//! The cache loops (`jc`, `kc`, `ic`) tile space, and the `kc` loop runs
//! in increasing order with the partial sum stored back to `C` between
//! blocks — so each element sees one rounding chain, in the same order,
//! with the same `mul`-then-`add` rounding (no FMA contraction). The
//! zero-skip fast path tests the *same* `A` coefficients the naive loop
//! tests. Results are therefore **bit-identical** across kernels, thread
//! counts and tile boundaries (property-tested in `tests/properties.rs`).
//!
//! # Selection
//!
//! [`GemmKernel::from_env`] reads the `GNNOPT_GEMM` environment variable
//! (`naive` | `blocked`, default blocked); `gnnopt-exec` threads the
//! choice through `ExecPolicy` so sessions pin it explicitly, and
//! `Session::new` surfaces an invalid value as a loud policy error (same
//! contract as `GNNOPT_FUSED`).

use crate::parallel::{available_threads, chunk_bounds as split_bounds};

/// Environment variable selecting the GEMM kernel (`naive` | `blocked`).
pub const GEMM_ENV_VAR: &str = "GNNOPT_GEMM";

/// Register-tile height of the portable microkernel: rows of `C` held in
/// registers.
pub const MR: usize = 4;

/// Register-tile width of the portable microkernel: columns of `C` held
/// in registers (two 128-bit SIMD lanes of `f32` on the x86-64 baseline).
pub const NR: usize = 8;

/// Register-tile height of the AVX2 microkernel (the BLIS `6×16` sgemm
/// shape: 12 `ymm` accumulators + 2 `B` lanes + 1 broadcast).
const MR_WIDE: usize = 6;

/// Register-tile width of the AVX2 microkernel.
const NR_WIDE: usize = 16;

/// k-depth of one packed panel pair (`A`: `KC×MR`, `B`: `KC×NR` — both
/// L1-resident alongside the register tile).
const KC: usize = 256;

/// Row count of one packed `A` block (a multiple of both register-tile
/// heights, so interior blocks carry no ragged panels).
const MC: usize = 96;

/// Column count of one packed `B` block (a multiple of both register-tile
/// widths).
const NC: usize = 256;

/// Which dense kernel executes `matmul` / `matmul_tn` / `matmul_nt`.
///
/// Both kernels produce **bit-identical** results (see the module docs);
/// the choice only trades speed. `Blocked` is the default everywhere;
/// `Naive` remains as the reference the equivalence suites pin against
/// and as the `GNNOPT_GEMM=naive` escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmKernel {
    /// The reference `ikj` loop (scalar row updates, no packing).
    Naive,
    /// Packed panels + `MR × NR` register-tiled microkernel.
    #[default]
    Blocked,
}

impl GemmKernel {
    /// Parses the `GNNOPT_GEMM` spelling of a kernel.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the valid spellings on
    /// anything other than `naive` / `blocked`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Ok(Self::Naive),
            "blocked" => Ok(Self::Blocked),
            other => Err(format!(
                "unknown GEMM kernel '{other}' (expected naive|blocked)"
            )),
        }
    }

    /// Reads the `GNNOPT_GEMM` override. Returns `Ok(None)` when unset.
    ///
    /// # Errors
    ///
    /// Returns the [`GemmKernel::parse`] error when the variable is set
    /// to an unknown spelling. Infallible callers
    /// ([`GemmKernel::from_env`]) fall back to the default; `gnnopt-exec`
    /// surfaces it as a session policy error.
    pub fn env() -> Result<Option<Self>, String> {
        match std::env::var(GEMM_ENV_VAR) {
            Ok(raw) => Self::parse(&raw)
                .map(Some)
                .map_err(|e| format!("{GEMM_ENV_VAR}: {e}")),
            Err(_) => Ok(None),
        }
    }

    /// The kernel `Tensor::matmul` (and friends) use when no explicit
    /// choice is plumbed in: the `GNNOPT_GEMM` override when valid, else
    /// [`GemmKernel::Blocked`].
    pub fn from_env() -> Self {
        Self::env().ok().flatten().unwrap_or_default()
    }
}

/// Operand layout of a product `C[m,n] = A' · B'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `A = [m,k]`, `B = [k,n]`, both row-major (`Tensor::matmul`).
    Nn,
    /// `A = [k,m]` row-major, used transposed (`Tensor::matmul_tn`,
    /// the `∂L/∂W = Xᵀ·G` hot path).
    Tn,
    /// `B = [n,k]` row-major, used transposed (`Tensor::matmul_nt`,
    /// the `∂L/∂X = G·Wᵀ` hot path).
    Nt,
}

impl Layout {
    fn a_transposed(self) -> bool {
        self == Self::Tn
    }

    fn b_transposed(self) -> bool {
        self == Self::Nt
    }
}

/// The `MH × NW` register-tiled microkernel body: accumulates `kc`
/// packed steps into a local tile, loading/storing only the
/// `rows × cols` valid region of `C`.
///
/// `SKIP` compiles the zero-skip branch in or out so the dense path stays
/// branch-free. The accumulation per element is `acc += a * b` in
/// increasing `k` — the exact rounding chain of the naive loop (separate
/// `mul` and `add` roundings; never contracted to FMA).
///
/// `#[inline(always)]` so each instantiation site compiles the body under
/// its own target features (the AVX2 wrapper widens the same code to
/// 256-bit lanes without a second implementation).
#[inline(always)]
fn micro_body<const MH: usize, const NW: usize, const SKIP: bool>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    #[inline(always)]
    fn fmadd<const NW: usize>(acc: &mut [f32; NW], a: f32, b: &[f32; NW]) {
        for i in 0..NW {
            acc[i] += a * b[i];
        }
    }
    let mut acc = [[0.0f32; NW]; MH];
    for (r, accr) in acc.iter_mut().enumerate().take(rows) {
        accr[..cols].copy_from_slice(&c[r * ldc..r * ldc + cols]);
    }
    let (mut oa, mut ob) = (0, 0);
    for _ in 0..kc {
        let av: &[f32; MH] = ap[oa..oa + MH].try_into().expect("packed A panel");
        let bv: &[f32; NW] = bp[ob..ob + NW].try_into().expect("packed B panel");
        for r in 0..MH {
            if SKIP && av[r] == 0.0 {
                continue;
            }
            fmadd(&mut acc[r], av[r], bv);
        }
        oa += MH;
        ob += NW;
    }
    for (r, accr) in acc.iter().enumerate().take(rows) {
        c[r * ldc..r * ldc + cols].copy_from_slice(&accr[..cols]);
    }
}

/// The AVX2 instantiation of [`micro_body`] at the wide `6×16` geometry.
/// Same Rust, compiled to 256-bit lanes; no FMA contraction (Rust keeps
/// `mul`+`add` roundings separate), so results stay bit-identical to the
/// portable kernel.
///
/// # Safety
///
/// The caller must have verified `avx2` support
/// (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_avx2<const SKIP: bool>(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    micro_body::<MR_WIDE, NR_WIDE, SKIP>(kc, ap, bp, c, ldc, rows, cols);
}

/// Packs the `rows × kc` block of `A` starting at `(i0, k0)` into
/// k-major `MH`-high panels (`buf[p][kk][r]`), zero-padding the tail
/// panel. Padded rows contribute nothing: their products are never
/// stored back.
///
/// When `flag_zeroes`, `zeroes[p]` records whether panel `p` holds any
/// *valid* zero coefficient — the per-panel skip decision: a zero-free
/// panel runs the branch-free microkernel even when the product asked
/// for zero skipping, because there is nothing to skip (the tail panel's
/// padding is flagged conservatively, which only costs it the branchy
/// kernel). A non-skipping product passes `flag_zeroes = false` and the
/// scan is elided (the flags are never consulted).
#[allow(clippy::too_many_arguments)]
fn pack_a<const MH: usize>(
    transposed: bool,
    a: &[f32],
    lda: usize,
    i0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
    buf: &mut Vec<f32>,
    flag_zeroes: bool,
    zeroes: &mut Vec<u32>,
) {
    let panels = rows.div_ceil(MH);
    buf.clear();
    buf.resize(panels * kc * MH, 0.0);
    zeroes.clear();
    zeroes.resize(panels, 0);
    for p in 0..panels {
        let dst = &mut buf[p * kc * MH..(p + 1) * kc * MH];
        let valid = MH.min(rows - p * MH);
        if transposed {
            // A[i, kk] = a[kk*lda + i]: each k-row is contiguous in i.
            for kk in 0..kc {
                let src = &a[(k0 + kk) * lda + i0 + p * MH..][..valid];
                dst[kk * MH..kk * MH + valid].copy_from_slice(src);
            }
        } else {
            // A[i, kk] = a[i*lda + kk]: transpose row slivers into k-major.
            for r in 0..valid {
                let src = &a[(i0 + p * MH + r) * lda + k0..][..kc];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * MH + r] = v;
                }
            }
        }
        if flag_zeroes {
            zeroes[p] = u32::from(valid < MH || dst.contains(&0.0));
        }
    }
}

/// Packs the `kc × cols` block of `B` starting at `(k0, j0)` into
/// k-major `NW`-wide panels (`buf[q][kk][c]`), zero-padding the tail
/// panel. Padded columns produce accumulator garbage that is never
/// stored back.
#[allow(clippy::too_many_arguments)]
fn pack_b<const NW: usize>(
    transposed: bool,
    b: &[f32],
    ldb: usize,
    k0: usize,
    kc: usize,
    j0: usize,
    cols: usize,
    buf: &mut Vec<f32>,
) {
    let panels = cols.div_ceil(NW);
    buf.clear();
    buf.resize(panels * kc * NW, 0.0);
    for q in 0..panels {
        let dst = &mut buf[q * kc * NW..(q + 1) * kc * NW];
        let valid = NW.min(cols - q * NW);
        if transposed {
            // B[kk, j] = b[j*ldb + kk]: transpose column slivers.
            for c in 0..valid {
                let src = &b[(j0 + q * NW + c) * ldb + k0..][..kc];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * NW + c] = v;
                }
            }
        } else {
            // B[kk, j] = b[kk*ldb + j]: each k-row is contiguous in j.
            for kk in 0..kc {
                let src = &b[(k0 + kk) * ldb + j0 + q * NW..][..valid];
                dst[kk * NW..kk * NW + valid].copy_from_slice(src);
            }
        }
    }
}

/// Serial blocked GEMM over the output slab `out[m, n]` (row-major,
/// leading dimension `ldc`), whose global origin is `(i0, j0)` of the
/// full product, at register-tile geometry `MH × NW` with `micro` as the
/// instantiated microkernel. The GEBP loop nest: `jc` (B column blocks)
/// → `kc` (packed panel depth, increasing k) → `ic` (A row blocks) →
/// `jr`/`ir` micro-tiles.
#[allow(clippy::too_many_arguments)]
fn blocked_slab<const MH: usize, const NW: usize>(
    layout: Layout,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
    (i0, m): (usize, usize),
    (j0, n): (usize, usize),
    k: usize,
    skip_zeros: bool,
    micro: impl Fn(bool, usize, &[f32], &[f32], &mut [f32], usize, usize, usize),
) {
    // Pack buffers cycle through the session buffer pool so a pinned
    // serial GEMM allocates nothing in steady state (worker threads have
    // no active pool scope and fall back to plain `Vec`s). The requests
    // are the largest block each panel loop will resize to.
    let (max_kc, max_mc, max_nc) = (KC.min(k), MC.min(m), NC.min(n));
    let mut apack = crate::pool::take_f32(max_mc.div_ceil(MH) * MH * max_kc);
    let mut bpack = crate::pool::take_f32(max_nc.div_ceil(NW) * NW * max_kc);
    let mut azero = crate::pool::take_u32(max_mc.div_ceil(MH));
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for kc0 in (0..k).step_by(KC) {
            let kc = KC.min(k - kc0);
            pack_b::<NW>(
                layout.b_transposed(),
                b,
                ldb,
                kc0,
                kc,
                j0 + jc,
                nc,
                &mut bpack,
            );
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a::<MH>(
                    layout.a_transposed(),
                    a,
                    lda,
                    i0 + ic,
                    mc,
                    kc0,
                    kc,
                    &mut apack,
                    skip_zeros,
                    &mut azero,
                );
                for (q, jr) in (0..nc).step_by(NW).enumerate() {
                    let bp = &bpack[q * kc * NW..(q + 1) * kc * NW];
                    let cols = NW.min(nc - jr);
                    for (p, ir) in (0..mc).step_by(MH).enumerate() {
                        let ap = &apack[p * kc * MH..(p + 1) * kc * MH];
                        let rows = MH.min(mc - ir);
                        let ctile = &mut out[(ic + ir) * ldc + jc + jr..];
                        // A zero-free panel has nothing to skip: run it
                        // branch-free (identical arithmetic either way).
                        micro(
                            skip_zeros && azero[p] != 0,
                            kc,
                            ap,
                            bp,
                            ctile,
                            ldc,
                            rows,
                            cols,
                        );
                    }
                }
            }
        }
    }
    crate::pool::put_f32(apack);
    crate::pool::put_f32(bpack);
    crate::pool::put_u32(azero);
}

/// Runs one blocked slab at the best geometry the host supports: the
/// wide `6×16` AVX2 microkernel when the CPU has AVX2, else the portable
/// `4×8` kernel. Geometry never affects results — every output element
/// keeps the same k-ordered accumulation chain — so the choice is purely
/// a throughput one (checked by the cross-kernel bit-identity suites on
/// whatever host runs them).
#[allow(clippy::too_many_arguments)]
fn blocked_dispatch(
    layout: Layout,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    k: usize,
    skip_zeros: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        blocked_slab::<MR_WIDE, NR_WIDE>(
            layout,
            a,
            lda,
            b,
            ldb,
            out,
            ldc,
            rows,
            cols,
            k,
            skip_zeros,
            |skip, kc, ap, bp, c, ldc, r, cl| {
                // SAFETY: avx2 support was just detected.
                unsafe {
                    if skip {
                        micro_avx2::<true>(kc, ap, bp, c, ldc, r, cl);
                    } else {
                        micro_avx2::<false>(kc, ap, bp, c, ldc, r, cl);
                    }
                }
            },
        );
        return;
    }
    blocked_slab::<MR, NR>(
        layout,
        a,
        lda,
        b,
        ldb,
        out,
        ldc,
        rows,
        cols,
        k,
        skip_zeros,
        |skip, kc, ap, bp, c, ldc, r, cl| {
            if skip {
                micro_body::<MR, NR, true>(kc, ap, bp, c, ldc, r, cl);
            } else {
                micro_body::<MR, NR, false>(kc, ap, bp, c, ldc, r, cl);
            }
        },
    );
}

/// Serial naive GEMM over the same slab interface as [`blocked_slab`]:
/// the reference loops, restricted to an output sub-rectangle.
#[allow(clippy::too_many_arguments)]
fn naive_slab(
    layout: Layout,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
    (i0, m): (usize, usize),
    (j0, n): (usize, usize),
    k: usize,
    skip_zeros: bool,
) {
    match layout {
        // ikj: stream B rows against the output row.
        Layout::Nn => {
            for i in 0..m {
                let arow = &a[(i0 + i) * lda..(i0 + i) * lda + k];
                let orow = &mut out[i * ldc..i * ldc + n];
                for (kk, &av) in arow.iter().enumerate() {
                    if skip_zeros && av == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * ldb + j0..kk * ldb + j0 + n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        // kij: stream A rows (columns of the logical Aᵀ) outermost.
        Layout::Tn => {
            for kk in 0..k {
                let arow = &a[kk * lda + i0..kk * lda + i0 + m];
                let brow = &b[kk * ldb + j0..kk * ldb + j0 + n];
                for (i, &av) in arow.iter().enumerate() {
                    if skip_zeros && av == 0.0 {
                        continue;
                    }
                    let orow = &mut out[i * ldc..i * ldc + n];
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            }
        }
        // ijk: per-element dot products against B rows.
        Layout::Nt => {
            for i in 0..m {
                let arow = &a[(i0 + i) * lda..(i0 + i) * lda + k];
                let orow = &mut out[i * ldc..i * ldc + n];
                for (j, ov) in orow.iter_mut().enumerate() {
                    let brow = &b[(j0 + j) * ldb..(j0 + j) * ldb + k];
                    let mut acc = *ov;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        if skip_zeros && av == 0.0 {
                            continue;
                        }
                        acc += av * bv;
                    }
                    *ov = acc;
                }
            }
        }
    }
}

/// Dispatches one serial slab to the selected kernel.
#[allow(clippy::too_many_arguments)]
fn run_slab(
    kernel: GemmKernel,
    layout: Layout,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldc: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    k: usize,
    skip_zeros: bool,
) {
    match kernel {
        GemmKernel::Naive => {
            naive_slab(layout, a, lda, b, ldb, out, ldc, rows, cols, k, skip_zeros)
        }
        GemmKernel::Blocked => {
            blocked_dispatch(layout, a, lda, b, ldb, out, ldc, rows, cols, k, skip_zeros);
        }
    }
}

/// Full-product entry point: computes `A'·B'` into `out[m,n]`, which the
/// caller **must pass zero-filled** (the serial paths accumulate into it
/// while the parallel `Tn` path assembles worker slabs, so any other
/// starting contents give path-dependent results), under an explicit
/// kernel and worker count.
///
/// Parallelism partitions **output rows** for `Nn`/`Nt` and **output
/// column blocks** for `Tn` (the `∂L/∂W` shape is a wide reduction: `m`
/// and `n` are feature widths while `k` is the huge vertex count, so
/// column blocks keep every worker streaming the full `k` extent of both
/// operands sequentially). No floating-point accumulation crosses a
/// partition boundary, so the result is **bit-identical** for any
/// `threads` value and either kernel.
///
/// Operand shapes per `layout` (all row-major):
/// `Nn`: `a = [m,k]`, `b = [k,n]` · `Tn`: `a = [k,m]`, `b = [k,n]` ·
/// `Nt`: `a = [m,k]`, `b = [n,k]`.
///
/// # Panics
///
/// Panics on operand slices shorter than the shapes imply.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    kernel: GemmKernel,
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    skip_zeros: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    let (lda, ldb) = match layout {
        Layout::Nn => (k, n),
        Layout::Tn => (m, n),
        Layout::Nt => (k, k),
    };
    if layout == Layout::Tn {
        // Column-block partition: each worker owns out[.., j0..j1),
        // computed into a dense local slab and stitched back serially.
        let workers = threads.clamp(1, n);
        if workers < 2 {
            run_slab(
                kernel,
                layout,
                a,
                lda,
                b,
                ldb,
                out,
                n,
                (0, m),
                (0, n),
                k,
                skip_zeros,
            );
            return;
        }
        let bounds = split_bounds(n, workers);
        let slabs: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = bounds
                .windows(2)
                .map(|w| {
                    let (j0, j1) = (w[0], w[1]);
                    s.spawn(move || {
                        let mut local = vec![0.0f32; m * (j1 - j0)];
                        run_slab(
                            kernel,
                            layout,
                            a,
                            lda,
                            b,
                            ldb,
                            &mut local,
                            j1 - j0,
                            (0, m),
                            (j0, j1 - j0),
                            k,
                            skip_zeros,
                        );
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gemm worker panicked"))
                .collect()
        });
        for (w, slab) in bounds.windows(2).zip(slabs) {
            let (j0, j1) = (w[0], w[1]);
            let width = j1 - j0;
            for r in 0..m {
                out[r * n + j0..r * n + j1].copy_from_slice(&slab[r * width..(r + 1) * width]);
            }
        }
    } else {
        // Row partition: contiguous disjoint output slabs.
        let workers = threads.clamp(1, m);
        if workers < 2 {
            run_slab(
                kernel,
                layout,
                a,
                lda,
                b,
                ldb,
                out,
                n,
                (0, m),
                (0, n),
                k,
                skip_zeros,
            );
            return;
        }
        let bounds = split_bounds(m, workers);
        let mut rest = &mut out[..];
        let mut chunks = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut((w[1] - w[0]) * n);
            chunks.push((w[0], head));
            rest = tail;
        }
        std::thread::scope(|s| {
            for (i0, chunk) in chunks {
                let rows = chunk.len() / n;
                s.spawn(move || {
                    run_slab(
                        kernel,
                        layout,
                        a,
                        lda,
                        b,
                        ldb,
                        chunk,
                        n,
                        (i0, rows),
                        (0, n),
                        k,
                        skip_zeros,
                    );
                });
            }
        });
    }
}

/// Below this many multiply-adds a product stays single-threaded
/// (thread spawning would dominate).
const PARALLEL_THRESHOLD: usize = 1 << 20;

/// The worker count `Tensor::matmul`-style entry points use for a
/// product of `work = m·k·n` multiply-adds: serial below the spawn
/// amortization threshold, else the shared pool size.
pub fn auto_threads(work: usize) -> usize {
    if work < PARALLEL_THRESHOLD {
        1
    } else {
        available_threads()
    }
}

/// The worker count for a product pinned to an explicit `threads` cap
/// (how a session's resolved `ExecPolicy::threads` governs its GEMMs
/// instead of the process-wide pool): still serial below the spawn
/// amortization threshold, never wider than the cap. `0` falls back to
/// [`auto_threads`].
pub fn pinned_threads(work: usize, threads: usize) -> usize {
    if threads == 0 {
        auto_threads(work)
    } else if work < PARALLEL_THRESHOLD {
        1
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense f64-free reference: the naive Nn loop on plain indices.
    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 97) as f32 - 48.0) / 16.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_reference_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 9),
            (5, 1, 3),
            (3, 4, 1),
            (MR, KC, NR),
            (MR + 1, 3, NR + 1),
            (2 * MR + 3, KC + 5, 2 * NR + 7),
            (MC + MR + 1, 17, NC + NR + 2),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let want = reference(&a, &b, m, k, n);
            for threads in [1usize, 3] {
                let mut out = vec![0.0f32; m * n];
                gemm(
                    GemmKernel::Blocked,
                    Layout::Nn,
                    &a,
                    &b,
                    &mut out,
                    m,
                    k,
                    n,
                    threads,
                    false,
                );
                assert_eq!(out, want, "Nn m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn layouts_agree_with_explicit_transposes() {
        let (m, k, n) = (9usize, 13, 11);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let want = reference(&a, &b, m, k, n);
        // Tn: store A as [k, m].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        // Nt: store B as [n, k].
        let mut bt = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            for threads in [1usize, 4] {
                let mut out = vec![0.0f32; m * n];
                gemm(
                    kernel,
                    Layout::Tn,
                    &at,
                    &b,
                    &mut out,
                    m,
                    k,
                    n,
                    threads,
                    false,
                );
                let max = out
                    .iter()
                    .zip(&want)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(max < 1e-4, "Tn {kernel:?} t={threads}: {max}");
                let mut out = vec![0.0f32; m * n];
                gemm(
                    kernel,
                    Layout::Nt,
                    &a,
                    &bt,
                    &mut out,
                    m,
                    k,
                    n,
                    threads,
                    false,
                );
                let max = out
                    .iter()
                    .zip(&want)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max);
                assert!(max < 1e-4, "Nt {kernel:?} t={threads}: {max}");
            }
        }
    }

    #[test]
    fn kernel_parse_and_env_spellings() {
        assert_eq!(GemmKernel::parse("naive"), Ok(GemmKernel::Naive));
        assert_eq!(GemmKernel::parse(" Blocked "), Ok(GemmKernel::Blocked));
        let err = GemmKernel::parse("turbo").unwrap_err();
        assert!(err.contains("turbo") && err.contains("blocked"));
        assert_eq!(GemmKernel::default(), GemmKernel::Blocked);
    }

    #[test]
    fn empty_extents_are_noops() {
        let mut out = vec![0.0f32; 0];
        gemm(
            GemmKernel::Blocked,
            Layout::Nn,
            &[],
            &[],
            &mut out,
            0,
            0,
            0,
            4,
            true,
        );
        // k = 0 with nonzero m, n leaves the zeroed output untouched.
        let mut out = vec![0.0f32; 6];
        gemm(
            GemmKernel::Blocked,
            Layout::Nn,
            &[],
            &[],
            &mut out,
            2,
            0,
            3,
            1,
            false,
        );
        assert_eq!(out, vec![0.0; 6]);
    }
}

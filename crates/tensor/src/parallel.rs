//! Shared CPU thread-pool sizing for every parallel kernel in the
//! workspace.
//!
//! Both the tensor GEMMs ([`crate::Tensor::matmul`]) and the graph kernels
//! in `gnnopt-exec` partition their output over `std::thread::scope`
//! worker threads. They must agree on the pool size — otherwise a fused
//! plan would oversubscribe the machine when a GEMM kernel and a graph
//! kernel pick different counts — so the detection logic lives here, in
//! the lowest crate of the dependency tree.
//!
//! The pool size is resolved as:
//!
//! 1. the `GNNOPT_THREADS` environment variable, when set to a positive
//!    integer (the CI gate runs the whole test suite under both
//!    `GNNOPT_THREADS=1` and `GNNOPT_THREADS=4`);
//! 2. otherwise [`std::thread::available_parallelism`], capped at
//!    [`MAX_AUTO_THREADS`].

/// Environment variable overriding the detected thread count.
pub const THREADS_ENV_VAR: &str = "GNNOPT_THREADS";

/// Cap on auto-detected parallelism: past this width the row-partitioned
/// kernels are memory-bound and extra threads only add spawn overhead.
pub const MAX_AUTO_THREADS: usize = 8;

/// Parses a `GNNOPT_THREADS` value: a positive integer thread count.
///
/// # Errors
///
/// Returns a description of the rejected value when it is not a positive
/// integer (zero included — "no threads" is not a meaningful pool size;
/// use `1` to force the serial path).
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "{THREADS_ENV_VAR} must be a positive integer, got '{raw}'"
        )),
        Ok(n) => Ok(n),
    }
}

/// Reads the `GNNOPT_THREADS` override.
///
/// Returns `Ok(None)` when unset.
///
/// # Errors
///
/// Returns the [`parse_threads`] error when the variable is set to
/// something other than a positive integer. Callers with an infallible API
/// (such as [`available_threads`]) ignore the error and fall back to
/// hardware detection; `gnnopt-exec` surfaces it as a session error.
pub fn env_threads() -> Result<Option<usize>, String> {
    match std::env::var(THREADS_ENV_VAR) {
        Ok(raw) => parse_threads(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

/// The worker-thread count every parallel kernel in the workspace uses:
/// the `GNNOPT_THREADS` override when valid, else detected hardware
/// parallelism capped at [`MAX_AUTO_THREADS`].
pub fn available_threads() -> usize {
    if let Ok(Some(n)) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_AUTO_THREADS))
}

/// Deterministic chunk boundaries over `rows` for up to `parts` workers:
/// the `div_ceil` split **every** parallel kernel in the workspace uses
/// (tensor GEMM partitions and the `gnnopt-exec` graph kernels delegate
/// here), so the "boundaries are a pure function of `(rows, parts)`"
/// determinism contract can never diverge between crates. Returns
/// strictly increasing bounds from `0` to `rows`.
pub fn chunk_bounds(rows: usize, parts: usize) -> Vec<usize> {
    let per = rows.div_ceil(parts.max(1)).max(1);
    let mut bounds = vec![0];
    while *bounds.last().expect("bounds is non-empty") < rows {
        bounds.push((bounds.last().expect("non-empty") + per).min(rows));
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 16 "), Ok(16));
    }

    #[test]
    fn parse_rejects_zero_and_garbage() {
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("four").is_err());
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

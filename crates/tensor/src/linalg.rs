//! Matrix multiplication and transposition.
//!
//! All three dense products (`matmul`, `matmul_tn`, `matmul_nt`) route
//! through the shared engine in [`crate::gemm`]: a [`GemmKernel`]
//! selects the register-tiled blocked kernel (the default) or the naive
//! reference loops, and the work is partitioned over `std::thread::scope`
//! workers (pool size from [`crate::parallel::available_threads`], shared
//! with the `gnnopt-exec` graph kernels) above a work threshold. Both
//! kernels and every thread count produce **bit-identical** results; see
//! the [`crate::gemm`] module docs for why.

use crate::gemm::{gemm, pinned_threads, GemmKernel, Layout};
use crate::{Result, Tensor, TensorError};

/// Elements of the left operand the zero probe inspects before giving
/// up. Post-ReLU activations hit a zero within the first few elements;
/// a dense operand pays at most this bounded scan instead of a full
/// `m·k` sweep (disabling the skip is always sound — it only forgoes an
/// optimization that had nothing to skip).
const ZERO_PROBE_CAP: usize = 4096;

/// Decides the zero-skip fast path for a product `a · b`: skipping an
/// `a`-coefficient equal to zero is only *useful* when `a` actually
/// contains zeros (e.g. post-ReLU activations) and only *sound* when `b`
/// is free of non-finite values, because IEEE 754 defines `0 · ±inf` and
/// `0 · NaN` as `NaN` — skipping would silently mask a diverging operand
/// instead of propagating it.
///
/// The zero probe early-exits on the first zero and is capped at
/// [`ZERO_PROBE_CAP`] elements, so the dense common case pays neither
/// the old unconditional full scan of `b` nor a full sweep of a
/// vertex-count-sized `a`.
fn skip_zero_rows(a: &[f32], b: &[f32]) -> bool {
    a.iter().take(ZERO_PROBE_CAP).any(|&v| v == 0.0) && crate::rowops::first_nonfinite(b).is_none()
}

impl Tensor {
    /// Dense matrix product `self[m,k] × other[k,n] → [m,n]` under the
    /// process-default kernel ([`GemmKernel::from_env`], i.e. the
    /// `GNNOPT_GEMM` override or the blocked engine).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self.cols() ==
    /// other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_with(other, GemmKernel::from_env())
    }

    /// [`Tensor::matmul`] under an explicit [`GemmKernel`], auto worker
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self.cols() ==
    /// other.rows()`.
    pub fn matmul_with(&self, other: &Tensor, kernel: GemmKernel) -> Result<Tensor> {
        self.matmul_with_threads(other, kernel, 0)
    }

    /// [`Tensor::matmul`] under an explicit [`GemmKernel`] and worker cap
    /// (how sessions pin both the engine and their resolved
    /// `ExecPolicy::threads`; `0` = auto). The cap never changes results
    /// — partitions are accumulation-free — only how wide the work runs.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self.cols() ==
    /// other.rows()`.
    pub fn matmul_with_threads(
        &self,
        other: &Tensor,
        kernel: GemmKernel,
        threads: usize,
    ) -> Result<Tensor> {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let skip = skip_zero_rows(self.as_slice(), other.as_slice());
        gemm(
            kernel,
            Layout::Nn,
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
            pinned_threads(m * k * n, threads),
            skip,
        );
        Ok(out)
    }

    /// Matrix product with the left operand transposed:
    /// `selfᵀ[k,m] × other[k,n] → [m,n]` where `self` is `[k,m]`… i.e.
    /// computes `Aᵀ B` for `A = self[k,m]`, `B = other[k,n]`.
    ///
    /// Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`); parallelized
    /// over output **column blocks** (the output is feature-width sized
    /// while `k` spans the vertex count, so column blocks keep every
    /// worker streaming both operands sequentially).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless row counts match.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_tn_with(other, GemmKernel::from_env())
    }

    /// [`Tensor::matmul_tn`] under an explicit [`GemmKernel`], auto
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless row counts match.
    pub fn matmul_tn_with(&self, other: &Tensor, kernel: GemmKernel) -> Result<Tensor> {
        self.matmul_tn_with_threads(other, kernel, 0)
    }

    /// [`Tensor::matmul_tn`] under an explicit [`GemmKernel`] and worker
    /// cap (`0` = auto; see [`Tensor::matmul_with_threads`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless row counts match.
    pub fn matmul_tn_with_threads(
        &self,
        other: &Tensor,
        kernel: GemmKernel,
        threads: usize,
    ) -> Result<Tensor> {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        // Same soundness condition as `matmul`: skipping zero coefficients
        // is only exact when the multiplied-in rows are finite.
        let skip = skip_zero_rows(self.as_slice(), other.as_slice());
        gemm(
            kernel,
            Layout::Tn,
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
            pinned_threads(m * k * n, threads),
            skip,
        );
        Ok(out)
    }

    /// Matrix product with the right operand transposed:
    /// `self[m,k] × otherᵀ[k,n] → [m,n]` for `other = [n,k]`.
    ///
    /// Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless inner dims match.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_nt_with(other, GemmKernel::from_env())
    }

    /// [`Tensor::matmul_nt`] under an explicit [`GemmKernel`], auto
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless inner dims match.
    pub fn matmul_nt_with(&self, other: &Tensor, kernel: GemmKernel) -> Result<Tensor> {
        self.matmul_nt_with_threads(other, kernel, 0)
    }

    /// [`Tensor::matmul_nt`] under an explicit [`GemmKernel`] and worker
    /// cap (`0` = auto; see [`Tensor::matmul_with_threads`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless inner dims match.
    pub fn matmul_nt_with_threads(
        &self,
        other: &Tensor,
        kernel: GemmKernel,
        threads: usize,
    ) -> Result<Tensor> {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        // No zero-skip here: the historical `nt` loop never skipped, and
        // the gradient-propagation path must stay exactly as it was.
        gemm(
            kernel,
            Layout::Nt,
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
            pinned_threads(m * k * n, threads),
            false,
        );
        Ok(out)
    }

    /// Transposes a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                let v = self.at(i, j);
                out.set(j, i, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = Tensor::from_rows(&[&[4.0], &[5.0], &[6.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[32.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Tensor::from_rows(&[&[1.0], &[0.5], &[-1.0]]).unwrap();
        let via_tn = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert!(via_tn.allclose(&explicit));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Tensor::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0]]).unwrap();
        let via_nt = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(via_nt.allclose(&explicit));
    }

    #[test]
    fn kernels_agree_bitwise_above_the_parallel_threshold() {
        // Big enough to cross the auto-parallel threshold: the blocked
        // engine, the naive reference and every partition must agree to
        // the last bit.
        let m = 256;
        let k = 64;
        let n = 128;
        let a = Tensor::from_fn(&[m, k], |i| ((i % 13) as f32) - 6.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i % 7) as f32) * 0.25);
        let blocked = a.matmul_with(&b, GemmKernel::Blocked).unwrap();
        let naive = a.matmul_with(&b, GemmKernel::Naive).unwrap();
        assert_eq!(blocked.as_slice(), naive.as_slice());
    }

    #[test]
    fn zero_times_nan_propagates() {
        // A zero coefficient multiplied into a NaN/inf operand must yield
        // NaN in the product (IEEE 754), not be skipped: a silently clean
        // output would mask divergence during training. The skip decision
        // is now gated on the left operand containing zeros at all, so
        // this is the regression net for both halves of the predicate.
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let a = Tensor::from_rows(&[&[0.0, 1.0]]).unwrap();
            let b = Tensor::from_rows(&[&[f32::NAN, f32::INFINITY], &[2.0, 3.0]]).unwrap();
            let c = a.matmul_with(&b, kernel).unwrap();
            assert!(c.at(0, 0).is_nan(), "{kernel:?}: 0·NaN must propagate");
            assert!(c.at(0, 1).is_nan(), "{kernel:?}: 0·inf + finite is NaN");

            let via_tn = a.transpose().matmul_tn_with(&b, kernel).unwrap();
            assert!(via_tn.at(0, 0).is_nan() && via_tn.at(0, 1).is_nan());

            // With finite operands the skip stays enabled and exact: a
            // sparse left operand still produces the plain dense product.
            let sparse = Tensor::from_rows(&[&[0.0, 2.0]]).unwrap();
            let dense = Tensor::from_rows(&[&[5.0, -1.0], &[0.5, 4.0]]).unwrap();
            assert_eq!(
                sparse.matmul_with(&dense, kernel).unwrap().as_slice(),
                &[1.0, 8.0]
            );
        }
    }

    #[test]
    fn zero_free_left_operand_skips_the_finiteness_scan_soundly() {
        // A left operand with no zeros disables the skip path without
        // reading `b` — and a non-finite `b` must still propagate through
        // the plain dense accumulation.
        let a = Tensor::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Tensor::from_rows(&[&[f32::NAN, 1.0], &[2.0, f32::INFINITY]]).unwrap();
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let c = a.matmul_with(&b, kernel).unwrap();
            assert!(c.at(0, 0).is_nan(), "{kernel:?}: NaN operand propagates");
            assert!(
                c.at(0, 1).is_infinite(),
                "{kernel:?}: inf operand propagates"
            );
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        assert_eq!(a.transpose().transpose().as_slice(), a.as_slice());
    }
}

//! Matrix multiplication and transposition.
//!
//! `matmul` parallelizes over row blocks with `std::thread::scope` when the
//! problem is large enough to amortize thread spawning (pool size from
//! [`crate::parallel::available_threads`], shared with the `gnnopt-exec`
//! graph kernels); the kernel itself is a cache-friendly ikj loop.

use crate::parallel::available_threads;
use crate::{Result, Tensor, TensorError};

/// Below this many multiply-adds, `matmul` stays single-threaded.
const PARALLEL_THRESHOLD: usize = 1 << 20;

/// Inner GEMM block. `skip_zeros` enables the sparse-row fast path that
/// skips `a`-coefficients equal to zero; it is only sound when `b` is
/// known to be free of non-finite values, because IEEE 754 defines
/// `0 · ±inf` and `0 · NaN` as `NaN` — skipping would silently mask a
/// diverging operand instead of propagating it.
fn matmul_block(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize, skip_zeros: bool) {
    let rows = out.len() / n;
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if skip_zeros && av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// True when every element is finite — the precondition for the zero-skip
/// fast path in [`matmul_block`].
fn all_finite(xs: &[f32]) -> bool {
    xs.iter().all(|v| v.is_finite())
}

impl Tensor {
    /// Dense matrix product `self[m,k] × other[k,n] → [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self.cols() ==
    /// other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let work = m * k * n;
        let threads = available_threads();
        // The zero-skip fast path must not mask 0 · NaN / 0 · inf
        // contributions from a non-finite right operand.
        let skip_zeros = all_finite(other.as_slice());
        if work < PARALLEL_THRESHOLD || threads < 2 || m < 2 {
            matmul_block(
                self.as_slice(),
                other.as_slice(),
                out.as_mut_slice(),
                k,
                n,
                skip_zeros,
            );
            return Ok(out);
        }
        let rows_per = m.div_ceil(threads);
        let a = self.as_slice();
        let b = other.as_slice();
        let chunks: Vec<&mut [f32]> = out.as_mut_slice().chunks_mut(rows_per * n).collect();
        std::thread::scope(|s| {
            for (ci, chunk) in chunks.into_iter().enumerate() {
                let a_off = ci * rows_per * k;
                let a_part = &a[a_off..(a_off + (chunk.len() / n) * k)];
                s.spawn(move || matmul_block(a_part, b, chunk, k, n, skip_zeros));
            }
        });
        Ok(out)
    }

    /// Matrix product with the left operand transposed:
    /// `selfᵀ[k,m] × other[k,n] → [m,n]` where `self` is `[k,m]`… i.e.
    /// computes `Aᵀ B` for `A = self[k,m]`, `B = other[k,n]`.
    ///
    /// Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless row counts match.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = other.as_slice();
        // Same soundness condition as `matmul`: skipping zero coefficients
        // is only exact when the multiplied-in rows are finite.
        let skip_zeros = all_finite(b);
        let o = out.as_mut_slice();
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if skip_zeros && av == 0.0 {
                    continue;
                }
                let orow = &mut o[i * n..(i + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product with the right operand transposed:
    /// `self[m,k] × otherᵀ[k,n] → [m,n]` for `other = [n,k]`.
    ///
    /// Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless inner dims match.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = other.as_slice();
        let o = out.as_mut_slice();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for (j, ov) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (av, bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *ov = acc;
            }
        }
        Ok(out)
    }

    /// Transposes a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                let v = self.at(i, j);
                out.set(j, i, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = Tensor::from_rows(&[&[4.0], &[5.0], &[6.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[32.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Tensor::from_rows(&[&[1.0], &[0.5], &[-1.0]]).unwrap();
        let via_tn = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert!(via_tn.allclose(&explicit));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Tensor::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0]]).unwrap();
        let via_nt = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert!(via_nt.allclose(&explicit));
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force the parallel path with a matrix big enough to cross the
        // threshold, then compare against the serial kernel on a slice.
        let m = 256;
        let k = 64;
        let n = 128;
        let a = Tensor::from_fn(&[m, k], |i| ((i % 13) as f32) - 6.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i % 7) as f32) * 0.25);
        let par = a.matmul(&b).unwrap();
        let mut serial = Tensor::zeros(&[m, n]);
        matmul_block(
            a.as_slice(),
            b.as_slice(),
            serial.as_mut_slice(),
            k,
            n,
            true,
        );
        assert!(par.allclose(&serial));
    }

    #[test]
    fn zero_times_nan_propagates() {
        // A zero coefficient multiplied into a NaN/inf operand must yield
        // NaN in the product (IEEE 754), not be skipped: a silently clean
        // output would mask divergence during training.
        let a = Tensor::from_rows(&[&[0.0, 1.0]]).unwrap();
        let b = Tensor::from_rows(&[&[f32::NAN, f32::INFINITY], &[2.0, 3.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.at(0, 0).is_nan(), "0·NaN must propagate, got {c:?}");
        assert!(c.at(0, 1).is_nan(), "0·inf + finite must be NaN, got {c:?}");

        let via_tn = a.transpose().matmul_tn(&b).unwrap();
        assert!(via_tn.at(0, 0).is_nan() && via_tn.at(0, 1).is_nan());

        // With finite operands the skip stays enabled and exact: a sparse
        // left operand still produces the plain dense product.
        let sparse = Tensor::from_rows(&[&[0.0, 2.0]]).unwrap();
        let dense = Tensor::from_rows(&[&[5.0, -1.0], &[0.5, 4.0]]).unwrap();
        assert_eq!(sparse.matmul(&dense).unwrap().as_slice(), &[1.0, 8.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        assert_eq!(a.transpose().transpose().as_slice(), a.as_slice());
    }
}

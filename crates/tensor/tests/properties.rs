//! Property-based tests of the tensor substrate.

use gnnopt_tensor::Tensor;
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::new(&[r, c], data).expect("shape matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..1000,
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
    ) {
        let gen = |s: u64, rows: usize, cols: usize| {
            Tensor::from_fn(&[rows, cols], |i| (((i as u64 + s) * 2654435761 % 97) as f32 - 48.0) / 16.0)
        };
        let a = gen(seed, m, k);
        let b = gen(seed + 1, k, n);
        let c = gen(seed + 2, k, n);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.allclose_with(&rhs, 1e-3, 1e-3), "diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn transpose_is_involution(t in small_matrix(8)) {
        let round_trip = t.transpose().transpose();
        prop_assert_eq!(round_trip.as_slice(), t.as_slice());
    }

    #[test]
    fn matmul_transpose_identity(
        seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6,
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let gen = |s: u64, rows: usize, cols: usize| {
            Tensor::from_fn(&[rows, cols], |i| (((i as u64 + s) * 40503 % 89) as f32 - 44.0) / 8.0)
        };
        let a = gen(seed, m, k);
        let b = gen(seed + 7, k, n);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.allclose_with(&rhs, 1e-2, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_matrix(8)) {
        let s = t.softmax_rows().unwrap();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn add_sub_roundtrip(t in small_matrix(8)) {
        let z = t.add(&t).unwrap().sub(&t).unwrap();
        prop_assert!(z.allclose_with(&t, 1e-4, 1e-4));
    }

    #[test]
    fn select_rows_matches_manual(t in small_matrix(6), idx in proptest::collection::vec(0usize..6, 1..8)) {
        let valid: Vec<usize> = idx.into_iter().filter(|&i| i < t.rows()).collect();
        prop_assume!(!valid.is_empty());
        let sel = t.select_rows(&valid).unwrap();
        for (out_row, &src) in valid.iter().enumerate() {
            prop_assert_eq!(sel.row(out_row), t.row(src));
        }
    }

    #[test]
    fn scalar_broadcast_equals_map(t in small_matrix(8), s in -4.0f32..4.0) {
        let via_broadcast = t.mul(&Tensor::from_vec(vec![s])).unwrap();
        let via_map = t.scale(s);
        prop_assert!(via_broadcast.allclose(&via_map));
    }

    #[test]
    fn max_cols_is_max(t in small_matrix(8)) {
        let (vals, idx) = t.max_cols().unwrap();
        for i in 0..t.rows() {
            let row = t.row(i);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(vals.at(i, 0), m);
            prop_assert_eq!(row[idx[i]], m);
        }
    }
}

//! Property-based tests of the tensor substrate.

use gnnopt_tensor::gemm::{gemm, GemmKernel, Layout};
use gnnopt_tensor::Tensor;
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::new(&[r, c], data).expect("shape matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        seed in 0u64..1000,
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
    ) {
        let gen = |s: u64, rows: usize, cols: usize| {
            Tensor::from_fn(&[rows, cols], |i| (((i as u64 + s) * 2654435761 % 97) as f32 - 48.0) / 16.0)
        };
        let a = gen(seed, m, k);
        let b = gen(seed + 1, k, n);
        let c = gen(seed + 2, k, n);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.allclose_with(&rhs, 1e-3, 1e-3), "diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn transpose_is_involution(t in small_matrix(8)) {
        let round_trip = t.transpose().transpose();
        prop_assert_eq!(round_trip.as_slice(), t.as_slice());
    }

    #[test]
    fn matmul_transpose_identity(
        seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6,
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let gen = |s: u64, rows: usize, cols: usize| {
            Tensor::from_fn(&[rows, cols], |i| (((i as u64 + s) * 40503 % 89) as f32 - 44.0) / 8.0)
        };
        let a = gen(seed, m, k);
        let b = gen(seed + 7, k, n);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.allclose_with(&rhs, 1e-2, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_matrix(8)) {
        let s = t.softmax_rows().unwrap();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn add_sub_roundtrip(t in small_matrix(8)) {
        let z = t.add(&t).unwrap().sub(&t).unwrap();
        prop_assert!(z.allclose_with(&t, 1e-4, 1e-4));
    }

    #[test]
    fn select_rows_matches_manual(t in small_matrix(6), idx in proptest::collection::vec(0usize..6, 1..8)) {
        let valid: Vec<usize> = idx.into_iter().filter(|&i| i < t.rows()).collect();
        prop_assume!(!valid.is_empty());
        let sel = t.select_rows(&valid).unwrap();
        for (out_row, &src) in valid.iter().enumerate() {
            prop_assert_eq!(sel.row(out_row), t.row(src));
        }
    }

    #[test]
    fn scalar_broadcast_equals_map(t in small_matrix(8), s in -4.0f32..4.0) {
        let via_broadcast = t.mul(&Tensor::from_vec(vec![s])).unwrap();
        let via_map = t.scale(s);
        prop_assert!(via_broadcast.allclose(&via_map));
    }

    #[test]
    fn max_cols_is_max(t in small_matrix(8)) {
        let (vals, idx) = t.max_cols().unwrap();
        for i in 0..t.rows() {
            let row = t.row(i);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(vals.at(i, 0), m);
            prop_assert_eq!(row[idx[i]], m);
        }
    }
}

/// Deterministic pseudo-random operand with an optional sprinkling of
/// exact zeros (so the zero-skip fast path genuinely fires when asked).
fn gemm_operand(len: usize, seed: u64, with_zeros: bool) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(97));
            if with_zeros && h.is_multiple_of(5) {
                0.0
            } else {
                ((h % 193) as f32 - 96.0) / 32.0
            }
        })
        .collect()
}

/// The naive Nn loop on plain indices: the oracle every kernel, layout,
/// thread count and skip mode must reproduce **bitwise**.
fn nn_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, skip: bool) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if skip && av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
    out
}

fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = x[r * cols + c];
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole determinism contract: the blocked register-tiled
    /// engine is bit-identical to the naive ikj reference on ragged
    /// shapes (nothing aligned to the MR/NR/KC tile sizes, including
    /// degenerate 1×n and m×1 extents), across every layout, thread
    /// count and both zero-skip modes.
    #[test]
    fn blocked_gemm_is_bit_identical_to_naive(
        seed in 0u64..1000,
        m in 1usize..40, k in 1usize..40, n in 1usize..40,
        degenerate in 0usize..4,
        with_zeros in 0usize..2,
        skip in 0usize..2,
    ) {
        let (with_zeros, skip) = (with_zeros == 1, skip == 1);
        // Force the degenerate extents the tile tails must survive.
        let (m, n) = match degenerate {
            1 => (1, n),
            2 => (m, 1),
            3 => (1, 1),
            _ => (m, n),
        };
        let a = gemm_operand(m * k, seed, with_zeros);
        let b = gemm_operand(k * n, seed + 1, false);
        let want = nn_reference(&a, &b, m, k, n, skip);
        let at = transpose(&a, m, k);
        let bt = transpose(&b, k, n);
        for threads in [1usize, 4] {
            for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
                let mut out = vec![0.0f32; m * n];
                gemm(kernel, Layout::Nn, &a, &b, &mut out, m, k, n, threads, skip);
                prop_assert_eq!(&out, &want, "Nn {:?} t={}", kernel, threads);

                let mut out = vec![0.0f32; m * n];
                gemm(kernel, Layout::Tn, &at, &b, &mut out, m, k, n, threads, skip);
                prop_assert_eq!(&out, &want, "Tn {:?} t={}", kernel, threads);

                let mut out = vec![0.0f32; m * n];
                gemm(kernel, Layout::Nt, &a, &bt, &mut out, m, k, n, threads, skip);
                prop_assert_eq!(&out, &want, "Nt {:?} t={}", kernel, threads);
            }
        }
    }

    /// `matmul_tn` is parallelized over output column blocks; the
    /// partition must never change a bit relative to one worker (each
    /// output element keeps its serial k-ordered accumulation chain).
    #[test]
    fn matmul_tn_parallel_is_bit_identical_to_serial(
        seed in 0u64..1000,
        m in 1usize..24, k in 1usize..64, n in 1usize..24,
        with_zeros in 0usize..2,
        skip in 0usize..2,
    ) {
        let (with_zeros, skip) = (with_zeros == 1, skip == 1);
        let a = gemm_operand(k * m, seed, with_zeros);
        let b = gemm_operand(k * n, seed + 3, false);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked] {
            let mut serial = vec![0.0f32; m * n];
            gemm(kernel, Layout::Tn, &a, &b, &mut serial, m, k, n, 1, skip);
            for threads in [2usize, 4, 7] {
                let mut par = vec![0.0f32; m * n];
                gemm(kernel, Layout::Tn, &a, &b, &mut par, m, k, n, threads, skip);
                prop_assert_eq!(&par, &serial, "{:?} threads={}", kernel, threads);
            }
        }
    }

    /// The `Tensor`-level products agree bitwise across kernels on data
    /// with ReLU-style zero sparsity (the shape of input the zero-gated
    /// skip decision actually sees in a GNN step).
    #[test]
    fn tensor_products_agree_across_kernels(
        seed in 0u64..1000,
        m in 1usize..20, k in 1usize..20, n in 1usize..20,
        with_zeros in 0usize..2,
    ) {
        let with_zeros = with_zeros == 1;
        let a = Tensor::new(&[m, k], gemm_operand(m * k, seed, with_zeros)).unwrap();
        let b = Tensor::new(&[k, n], gemm_operand(k * n, seed + 5, false)).unwrap();
        let nn_naive = a.matmul_with(&b, GemmKernel::Naive).unwrap();
        let nn_blocked = a.matmul_with(&b, GemmKernel::Blocked).unwrap();
        prop_assert_eq!(nn_naive.as_slice(), nn_blocked.as_slice());

        let at = a.transpose();
        let tn_naive = at.matmul_tn_with(&b, GemmKernel::Naive).unwrap();
        let tn_blocked = at.matmul_tn_with(&b, GemmKernel::Blocked).unwrap();
        prop_assert_eq!(tn_naive.as_slice(), tn_blocked.as_slice());
        prop_assert_eq!(tn_naive.as_slice(), nn_naive.as_slice());

        let bt = b.transpose();
        let nt_naive = a.matmul_nt_with(&bt, GemmKernel::Naive).unwrap();
        let nt_blocked = a.matmul_nt_with(&bt, GemmKernel::Blocked).unwrap();
        prop_assert_eq!(nt_naive.as_slice(), nt_blocked.as_slice());
    }
}
